#include "storage/page.h"

#include <cstring>

#include "common/hash.h"
#include "common/logging.h"

namespace ode {

uint32_t PageChecksum(const char* page_bytes) {
  // Bytes [0..8) (id, slot count, free ptr), then everything after the
  // checksum field.
  uint32_t crc = Crc32c(page_bytes, 8);
  return Crc32c(page_bytes + kPageHeaderSize, kPageSize - kPageHeaderSize,
                crc);
}

void Page::Format(uint32_t page_id) {
  std::memset(data_.data(), 0, kPageSize);
  WriteU32(0, page_id);
  set_slot_count(0);
  set_free_ptr(kPageHeaderSize);
}

void Page::Load(const char* bytes) {
  std::memcpy(data_.data(), bytes, kPageSize);
}

void Page::UpdateChecksum() { WriteU32(8, PageChecksum(data_.data())); }

bool Page::VerifyChecksum() const {
  return stored_checksum() == PageChecksum(data_.data());
}

Status Page::ValidateStructure() const {
  const size_t count = slot_count();
  if (kPageHeaderSize + 4 * count > kPageSize) {
    return Status::Corruption("page " + std::to_string(page_id()) +
                              ": slot count " + std::to_string(count) +
                              " overruns the page");
  }
  const size_t dir_top = kPageSize - 4 * count;
  const size_t fp = free_ptr();
  if (fp < kPageHeaderSize || fp > dir_top) {
    return Status::Corruption("page " + std::to_string(page_id()) +
                              ": free pointer " + std::to_string(fp) +
                              " out of bounds");
  }
  for (uint16_t s = 0; s < count; ++s) {
    const uint16_t off = ReadU16(SlotOffset(s));
    if (off == kDeadSlot) continue;
    const uint16_t len = ReadU16(SlotOffset(s) + 2);
    // The record (8-byte oid + payload) must sit entirely between the
    // header and the slot directory; anything else would let Read /
    // ForEach index outside the page buffer.
    if (off < kPageHeaderSize ||
        static_cast<size_t>(off) + 8 + len > dir_top) {
      return Status::Corruption("page " + std::to_string(page_id()) +
                                ": slot " + std::to_string(s) +
                                " points outside the record area");
    }
  }
  return Status::OK();
}

uint16_t Page::ReadU16(size_t off) const {
  uint16_t v;
  std::memcpy(&v, data_.data() + off, sizeof(v));
  return v;
}
uint32_t Page::ReadU32(size_t off) const {
  uint32_t v;
  std::memcpy(&v, data_.data() + off, sizeof(v));
  return v;
}
uint64_t Page::ReadU64(size_t off) const {
  uint64_t v;
  std::memcpy(&v, data_.data() + off, sizeof(v));
  return v;
}
void Page::WriteU16(size_t off, uint16_t v) {
  std::memcpy(data_.data() + off, &v, sizeof(v));
}
void Page::WriteU32(size_t off, uint32_t v) {
  std::memcpy(data_.data() + off, &v, sizeof(v));
}
void Page::WriteU64(size_t off, uint64_t v) {
  std::memcpy(data_.data() + off, &v, sizeof(v));
}

size_t Page::FreeSpaceForInsert() const {
  size_t dir_top = kPageSize - 4 * slot_count();
  size_t contiguous =
      dir_top > free_ptr() ? dir_top - free_ptr() : 0;
  // Count holes from dead/shrunk records too: a compaction can recover
  // them, so report total reclaimable space minus the new slot entry.
  size_t live = kPageHeaderSize;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    uint16_t off = ReadU16(SlotOffset(s));
    if (off == kDeadSlot) continue;
    live += 8 + ReadU16(SlotOffset(s) + 2);
  }
  size_t reclaimable = dir_top > live ? dir_top - live : 0;
  size_t space = reclaimable > contiguous ? reclaimable : contiguous;
  return space > 4 + 8 ? space - 4 - 8 : 0;  // slot entry + oid prefix
}

Result<uint16_t> Page::Insert(uint64_t oid, Slice payload) {
  if (payload.size() > kMaxPayload) {
    return Status::InvalidArgument("record payload exceeds page capacity");
  }
  size_t need = 8 + payload.size();
  // Find a reusable dead slot, else extend the directory.
  uint16_t slot = slot_count();
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (ReadU16(SlotOffset(s)) == kDeadSlot) {
      slot = s;
      break;
    }
  }
  size_t dir_growth = (slot == slot_count()) ? 4 : 0;
  size_t dir_top = kPageSize - 4 * slot_count() - dir_growth;
  if (free_ptr() + need > dir_top) {
    Compact();
    dir_top = kPageSize - 4 * slot_count() - dir_growth;
    if (free_ptr() + need > dir_top) {
      return Status::Internal("page full");
    }
  }
  uint16_t off = free_ptr();
  WriteU64(off, oid);
  if (!payload.empty()) {
    std::memcpy(data_.data() + off + 8, payload.data(), payload.size());
  }
  set_free_ptr(static_cast<uint16_t>(off + need));
  if (slot == slot_count()) set_slot_count(slot + 1);
  WriteU16(SlotOffset(slot), off);
  WriteU16(SlotOffset(slot) + 2, static_cast<uint16_t>(payload.size()));
  return slot;
}

bool Page::SlotLive(uint16_t slot) const {
  return slot < slot_count() && ReadU16(SlotOffset(slot)) != kDeadSlot;
}

Status Page::Read(uint16_t slot, uint64_t* oid,
                  std::vector<char>* payload) const {
  if (!SlotLive(slot)) return Status::NotFound("dead or out-of-range slot");
  uint16_t off = ReadU16(SlotOffset(slot));
  uint16_t len = ReadU16(SlotOffset(slot) + 2);
  *oid = ReadU64(off);
  payload->assign(data_.data() + off + 8, data_.data() + off + 8 + len);
  return Status::OK();
}

Status Page::Update(uint16_t slot, Slice payload) {
  if (!SlotLive(slot)) return Status::NotFound("dead or out-of-range slot");
  uint16_t off = ReadU16(SlotOffset(slot));
  uint16_t len = ReadU16(SlotOffset(slot) + 2);
  if (payload.size() <= len) {
    std::memcpy(data_.data() + off + 8, payload.data(), payload.size());
    WriteU16(SlotOffset(slot) + 2, static_cast<uint16_t>(payload.size()));
    return Status::OK();
  }
  // Try append-at-end (possibly after compaction), keeping the same slot.
  uint64_t oid = ReadU64(off);
  size_t need = 8 + payload.size();
  size_t dir_top = kPageSize - 4 * slot_count();
  if (free_ptr() + need > dir_top) {
    // Temporarily kill the slot so Compact() drops the old image.
    WriteU16(SlotOffset(slot), kDeadSlot);
    Compact();
    if (free_ptr() + need > kPageSize - 4 * static_cast<size_t>(slot_count())) {
      return Status::NotSupported("record no longer fits in page");
    }
  }
  uint16_t new_off = free_ptr();
  WriteU64(new_off, oid);
  std::memcpy(data_.data() + new_off + 8, payload.data(), payload.size());
  set_free_ptr(static_cast<uint16_t>(new_off + need));
  WriteU16(SlotOffset(slot), new_off);
  WriteU16(SlotOffset(slot) + 2, static_cast<uint16_t>(payload.size()));
  return Status::OK();
}

Status Page::Delete(uint16_t slot) {
  if (!SlotLive(slot)) return Status::NotFound("dead or out-of-range slot");
  WriteU16(SlotOffset(slot), kDeadSlot);
  WriteU16(SlotOffset(slot) + 2, 0);
  return Status::OK();
}

void Page::ForEach(
    const std::function<void(uint16_t, uint64_t, Slice)>& fn) const {
  for (uint16_t s = 0; s < slot_count(); ++s) {
    uint16_t off = ReadU16(SlotOffset(s));
    if (off == kDeadSlot) continue;
    uint16_t len = ReadU16(SlotOffset(s) + 2);
    fn(s, ReadU64(off), Slice(data_.data() + off + 8, len));
  }
}

void Page::Compact() {
  std::vector<char> scratch(kPageSize);
  std::memcpy(scratch.data(), data_.data(), kPageHeaderSize);  // header
  uint16_t write_off = kPageHeaderSize;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    uint16_t off = ReadU16(SlotOffset(s));
    if (off == kDeadSlot) continue;
    uint16_t len = ReadU16(SlotOffset(s) + 2);
    std::memcpy(scratch.data() + write_off, data_.data() + off, 8 + len);
    WriteU16(SlotOffset(s), write_off);
    write_off = static_cast<uint16_t>(write_off + 8 + len);
  }
  // Copy relocated records and new header over, keep the slot directory
  // (already updated in place).
  std::memcpy(data_.data() + kPageHeaderSize,
              scratch.data() + kPageHeaderSize,
              static_cast<size_t>(write_off) - kPageHeaderSize);
  set_free_ptr(write_off);
}

}  // namespace ode
