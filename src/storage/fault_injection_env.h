#ifndef ODE_STORAGE_FAULT_INJECTION_ENV_H_
#define ODE_STORAGE_FAULT_INJECTION_ENV_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ordered_mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "storage/env.h"

namespace ode {

class Counter;
class MetricsRegistry;

/// Env wrapper that injects I/O faults at every boundary the storage
/// layer crosses, in the LevelDB fault-injection style:
///
///  - fail-Nth-op: SetCrashAtOp(k) makes the k-th *mutating* op (append,
///    sync, page write, truncate, rename, remove) fail with kIOError and
///    leaves the env "crashed" — every later op fails too, as if the
///    process lost its disk. ops() after a full reference run gives the
///    sweep bound.
///  - transient faults: FailNextOps(n) fails the next n faultable ops
///    once each; SetTransientFaultProbability(p, seed) fails any faultable
///    op with probability p. Both are recoverable — the op was simply not
///    performed — which is what the retry policy exists for.
///  - crash emulation: the env tracks, per file, which bytes have been
///    fsynced. After a crash, DropUnsyncedData(seed) rewrites the files
///    the way a power loss would have left them: append files are
///    truncated to their synced size plus a random torn prefix of the
///    unsynced tail; each unsynced page write is kept or rolled back to
///    its pre-image by a coin flip. Page writes are assumed atomic
///    (no torn pages — see docs/storage.md for why).
///  - ArmCrashAfterNextSync(): crash immediately after the next
///    successful WritableFile::Sync, i.e. between the WAL commit fsync
///    and the page writes that follow it.
///
/// Every injected fault increments ode_env_faults_injected_total.
/// DropUnsyncedData must only be called while no file handles are open
/// (after the store crashed / was torn down).
class FaultInjectionEnv final : public Env {
 public:
  explicit FaultInjectionEnv(Env* base = Env::Default());

  // --- Env interface ---
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  Status NewRandomRWFile(const std::string& path,
                         std::unique_ptr<RandomRWFile>* out) override;
  Status ReadFileToString(const std::string& path, std::string* out) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  void SleepMicros(uint64_t micros) override;
  void BindMetrics(MetricsRegistry* registry) override;

  // --- fault controls (thread-safe) ---

  /// Mutating ops executed (or failed by injection) so far.
  uint64_t ops() const;

  /// The `op`-th (1-based) mutating op from the beginning fails and the
  /// env stays crashed. 0 disarms.
  void SetCrashAtOp(uint64_t op);

  /// Crash right after the next successful append-file Sync — between a
  /// WAL commit fsync and the page writes that would follow it.
  void ArmCrashAfterNextSync();

  /// The next `n` faultable ops (reads included) fail once each with a
  /// transient kIOError.
  void FailNextOps(uint32_t n);

  /// Every faultable op fails with probability `p` (0 disables).
  void SetTransientFaultProbability(double p, uint64_t seed);

  /// Silent-corruption injection: flips one bit of the on-disk file at
  /// `path` (byte `offset`, bit 0-7), writing through the base env so the
  /// flip persists across reopen — the model of a medium/firmware error
  /// the drive did not report. Counted as an injected fault. Unlike the
  /// crash controls this leaves the env fully operational: the whole
  /// point is that the *store* must notice via page checksums.
  Status FlipBitAt(const std::string& path, uint64_t offset, uint32_t bit);

  /// Every page read succeeds but returns scrambled bytes with
  /// probability `p` (0 disables) — a transient misdirected/garbage read
  /// the storage layer must detect (checksum) and must not cache.
  void SetGarbageReadProbability(double p, uint64_t seed);

  /// Invoked — outside the env mutex — at the moment a crash point
  /// trips (SetCrashAtOp, ArmCrashAfterNextSync, or the torn mid-append
  /// crash), with a short description of the op that "lost power".
  /// Transient faults do not fire it. Wire it to Tracer::DumpToFile to
  /// capture a flight-recorder snapshot at the instant of the crash.
  void SetCrashCallback(std::function<void(const char*)> callback);

  /// When true (the default), DropUnsyncedData keeps a random torn
  /// prefix of an append file's unsynced tail; when false the whole
  /// unsynced tail is lost cleanly.
  void SetTornWrites(bool on);

  bool crashed() const;

  /// Rewrites tracked files as a power loss would have left them (see
  /// class comment). Call only while no handles are open.
  Status DropUnsyncedData(uint64_t seed);

  /// Clears crash state and one-shot injections so the store can reopen.
  /// Durability bookkeeping (synced sizes) is kept.
  void ResetAfterCrash();

  uint64_t faults_injected() const;

 private:
  friend class FaultWritableFile;
  friend class FaultRWFile;

  struct FileState {
    /// Append files: total bytes appended / bytes known durable.
    uint64_t append_size = 0;
    uint64_t synced_size = 0;
    /// RW files: pre-image of each region written since the last sync,
    /// keyed by offset (all writers in this repo write fixed-size pages,
    /// so offsets never partially overlap).
    std::map<uint64_t, std::vector<char>> unsynced_writes;
  };

  /// Gate for a mutating op: counts it, then applies fail-next /
  /// transient / crash-at injections. Returns the injected error or OK.
  Status BeginMutatingOp(const char* what);
  /// Gate for a read op: fail-next / transient only, not counted.
  Status BeginReadOp(const char* what);
  /// Bumps the authoritative fault count and mirrors it to the bound
  /// registry counter.
  void CountFaultLocked() ODE_REQUIRES(mu_);
  Status InjectLocked(const char* what) ODE_REQUIRES(mu_);
  Status CrashedError(const char* what) const;
  /// Runs the crash callback if a crash point tripped since the last
  /// call. Must be called WITHOUT mu_ held — entry points invoke it
  /// after their locked region so the callback can reach back into the
  /// env (or dump a trace) without deadlocking.
  void FireCrashCallbackIfPending();

  // File-op implementations called by the wrapper handles.
  Status DoAppend(const std::string& path, WritableFile* base, Slice data);
  Status DoWritableSync(const std::string& path, WritableFile* base);
  Status DoReadAt(RandomRWFile* base, uint64_t offset, size_t n,
                  char* scratch);
  Status DoWriteAt(const std::string& path, RandomRWFile* base,
                   uint64_t offset, Slice data);
  Status DoRWSync(const std::string& path, RandomRWFile* base);

  Env* base_;
  // Below the storage layer's locks (ranked deeper than wal_mu_/pool_mu_
  // etc.): the env is called from inside WAL appends and page I/O.
  mutable OrderedMutex mu_{lock_rank::kFaultEnv, "fault_env.mu"};
  std::unordered_map<std::string, FileState> files_ ODE_GUARDED_BY(mu_);
  uint64_t ops_ ODE_GUARDED_BY(mu_) = 0;
  uint64_t crash_at_ ODE_GUARDED_BY(mu_) = 0;
  uint32_t fail_next_ ODE_GUARDED_BY(mu_) = 0;
  bool crashed_ ODE_GUARDED_BY(mu_) = false;
  bool crash_after_sync_ ODE_GUARDED_BY(mu_) = false;
  bool torn_writes_ ODE_GUARDED_BY(mu_) = true;
  double transient_p_ ODE_GUARDED_BY(mu_) = 0.0;
  double garbage_read_p_ ODE_GUARDED_BY(mu_) = 0.0;
  Random rng_ ODE_GUARDED_BY(mu_){1};
  Random garbage_rng_ ODE_GUARDED_BY(mu_){1};
  /// Authoritative count. The registry counter is only a mirror: the env
  /// outlives whatever registry it was last bound to (the store that
  /// bound it is torn down and reopened around every crash), so
  /// faults_injected() must not read through faults_.
  uint64_t fault_count_ ODE_GUARDED_BY(mu_) = 0;
  /// Set (under mu_) by the crash sites, consumed by
  /// FireCrashCallbackIfPending after the lock is released.
  const char* just_crashed_what_ ODE_GUARDED_BY(mu_) = nullptr;
  std::function<void(const char*)> crash_callback_;
  Counter* faults_ = nullptr;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
};

}  // namespace ode

#endif  // ODE_STORAGE_FAULT_INJECTION_ENV_H_
