#ifndef ODE_STORAGE_LOCK_MANAGER_H_
#define ODE_STORAGE_LOCK_MANAGER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/metrics.h"
#include "common/ordered_mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/tracing.h"
#include "objstore/oid.h"

namespace ode {

enum class LockMode { kShared, kExclusive };

/// Object-granularity strict two-phase locking with shared/exclusive modes,
/// S->X upgrade, FIFO queuing, and deadlock detection on the wait-for
/// graph (the requester is the victim). Locks are released wholesale at
/// commit/abort via ReleaseAll.
///
/// The paper observes (§6) that "triggers turn read access into write
/// access, increasing both the amount of time the transactions spend
/// waiting for locks and the likelihood of deadlock" — the `conflicts()`
/// and `deadlocks()` counters let benchmark E5 quantify exactly that.
class LockManager {
 public:
  struct Options {
    std::chrono::milliseconds timeout{5000};
  };

  LockManager() : LockManager(Options()) {}
  explicit LockManager(Options options);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires (or upgrades) a lock, blocking if necessary. Returns
  /// kDeadlock if waiting would close a cycle in the wait-for graph, or
  /// kLockTimeout after Options::timeout.
  ///
  /// Exempt from thread-safety analysis: mu_ is held across a cv wait
  /// loop plus tracer/metric calls made after the grant decision, a
  /// shape the annotation language cannot express function-by-function.
  /// The runtime rank validator still covers it (mu_ is ranked).
  Status Acquire(TxnId txn, Oid oid, LockMode mode)
      ODE_NO_THREAD_SAFETY_ANALYSIS;

  /// Releases every lock held by txn (strict 2PL release point).
  void ReleaseAll(TxnId txn);

  /// True if txn currently holds a lock on oid at least as strong as mode.
  bool Holds(TxnId txn, Oid oid, LockMode mode) const;

  size_t LocksHeld(TxnId txn) const;

  /// Points this manager's counters at `registry` (the owning Database's
  /// registry, so lock metrics land on the same reporting surface as the
  /// rest). A standalone LockManager uses its own private registry, which
  /// keeps the accessors below per-instance. Call before first use.
  void BindMetrics(MetricsRegistry* registry);

  /// Points this manager at the owning Database's span tracer: sampled
  /// transactions get a lock-acquire span per grant, carrying the
  /// nanoseconds they spent blocked. nullptr (the standalone default)
  /// records nothing.
  void BindTracer(Tracer* tracer) { tracer_ = tracer; }

  /// Number of Acquire calls that had to wait at least once.
  uint64_t conflicts() const { return conflicts_->value(); }
  /// Deadlock aborts: Acquire calls refused with kDeadlock (the requester
  /// is always the victim, so each is one aborted acquisition).
  uint64_t deadlocks() const { return deadlocks_->value(); }
  uint64_t timeouts() const { return timeouts_->value(); }
  /// Total nanoseconds spent blocked inside Acquire across all txns.
  uint64_t wait_ns() const { return wait_ns_total_->value(); }

 private:
  struct Waiter {
    TxnId txn;
    LockMode mode;
    bool upgrade = false;
  };

  struct LockState {
    // All holders share, or there is exactly one exclusive holder.
    std::unordered_map<TxnId, LockMode> holders;
    std::deque<Waiter> queue;
  };

  bool GrantableLocked(const LockState& state, const Waiter& waiter) const
      ODE_REQUIRES(mu_);
  /// True if `waiter` blocking on `oid` would close a wait-for cycle.
  /// On detection, `*closing_blocker` is the direct blocker (holder or
  /// queued-ahead exclusive waiter) whose wait chain leads back to
  /// `waiter` — the edge reported in the kDeadlock message.
  bool WouldDeadlockLocked(TxnId waiter, Oid oid,
                           TxnId* closing_blocker) const ODE_REQUIRES(mu_);
  void CollectBlockersLocked(TxnId txn, Oid oid,
                             std::unordered_set<TxnId>* out) const
      ODE_REQUIRES(mu_);
  /// "wait-for cycle: victim txn V waits for oid(N) held by txn H" — the
  /// actionable edge for deadlock-retry logs and spans.
  static std::string DeadlockMessage(TxnId victim, Oid oid, TxnId blocker);

  Options options_;
  mutable OrderedMutex mu_{lock_rank::kLockTable, "lock_manager.mu"};
  CondVar cv_;
  std::unordered_map<Oid, LockState, OidHash> table_ ODE_GUARDED_BY(mu_);
  // txn -> oids held (for ReleaseAll).
  std::unordered_map<TxnId, std::unordered_set<Oid, OidHash>> held_
      ODE_GUARDED_BY(mu_);
  // txn -> oid it is currently waiting on (for deadlock detection).
  std::unordered_map<TxnId, Oid> waiting_on_ ODE_GUARDED_BY(mu_);

  // Metrics (see BindMetrics). All incremented under mu_, so relaxed
  // counter cells are purely for cheap cross-registry reads.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  Counter* conflicts_ = nullptr;
  Counter* deadlocks_ = nullptr;
  Counter* timeouts_ = nullptr;
  Counter* wait_ns_total_ = nullptr;
  Histogram* wait_latency_ = nullptr;
  Tracer* tracer_ = nullptr;
};

}  // namespace ode

#endif  // ODE_STORAGE_LOCK_MANAGER_H_
