#include "storage/fault_injection_env.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"

namespace ode {

// Wrapper handles forward every call into the env, where the shared
// fault state lives behind one mutex.

class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string path,
                    std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(Slice data) override {
    return env_->DoAppend(path_, base_.get(), data);
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override { return env_->DoWritableSync(path_, base_.get()); }
  // Close is never faulted: teardown must be able to release resources
  // even after a crash (a real close failure still surfaces).
  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

class FaultRWFile final : public RandomRWFile {
 public:
  FaultRWFile(FaultInjectionEnv* env, std::string path,
              std::unique_ptr<RandomRWFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status ReadAt(uint64_t offset, size_t n, char* scratch) override {
    return env_->DoReadAt(base_.get(), offset, n, scratch);
  }
  Status WriteAt(uint64_t offset, Slice data) override {
    return env_->DoWriteAt(path_, base_.get(), offset, data);
  }
  Status Sync() override { return env_->DoRWSync(path_, base_.get()); }
  Status Close() override { return base_->Close(); }
  Result<uint64_t> Size() const override { return base_->Size(); }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<RandomRWFile> base_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base) : base_(base) {
  owned_metrics_ = std::make_unique<MetricsRegistry>();
  BindMetrics(owned_metrics_.get());
}

void FaultInjectionEnv::BindMetrics(MetricsRegistry* registry) {
  MutexLock lock(&mu_);
  // nullptr = unbind (the registry we were mirroring into is going
  // away); revert to the env's own registry so the mirror stays valid.
  if (registry == nullptr) registry = owned_metrics_.get();
  faults_ = registry->GetCounter("ode_env_faults_injected_total");
}

void FaultInjectionEnv::CountFaultLocked() {
  ++fault_count_;
  faults_->Inc();
}

Status FaultInjectionEnv::CrashedError(const char* what) const {
  return Status::IOError(std::string("injected crash: env is down (") +
                         what + ")");
}

Status FaultInjectionEnv::InjectLocked(const char* what) {
  if (fail_next_ > 0) {
    --fail_next_;
    CountFaultLocked();
    return Status::IOError(std::string("injected transient fault (") + what +
                           ")");
  }
  if (crash_at_ != 0 && ops_ >= crash_at_) {
    crashed_ = true;
    just_crashed_what_ = what;
    CountFaultLocked();
    return CrashedError(what);
  }
  if (transient_p_ > 0.0 && rng_.Bernoulli(transient_p_)) {
    CountFaultLocked();
    return Status::IOError(std::string("injected transient fault (") + what +
                           ")");
  }
  return Status::OK();
}

Status FaultInjectionEnv::BeginMutatingOp(const char* what) {
  if (crashed_) return CrashedError(what);
  ++ops_;
  return InjectLocked(what);
}

Status FaultInjectionEnv::BeginReadOp(const char* what) {
  if (crashed_) return CrashedError(what);
  // Reads are not counted in ops(): a crash mid-read leaves the disk
  // exactly as the crash before the next write would, so counting them
  // would only inflate sweeps with duplicate crash points.
  return InjectLocked(what);
}

// ------------------------------------------------------------- file ops

// Crash-capable entry points run their locked body in a lambda so
// FireCrashCallbackIfPending can execute after mu_ is released.

Status FaultInjectionEnv::DoAppend(const std::string& path,
                                   WritableFile* base, Slice data) {
  Status result = [&]() -> Status {
    MutexLock lock(&mu_);
    if (crashed_) return CrashedError("append");
    ++ops_;
    FileState& fs = files_[path];
    bool crash_now = crash_at_ != 0 && ops_ >= crash_at_;
    if (crash_now && torn_writes_ && data.size() > 1) {
      // The op that loses power mid-write leaves a prefix in the OS
      // cache; whether any of it reaches the platter is
      // DropUnsyncedData's coin.
      size_t keep = rng_.Uniform(data.size());
      if (keep > 0 && base->Append(Slice(data.data(), keep)).ok()) {
        fs.append_size += keep;
      }
      crashed_ = true;
      just_crashed_what_ = "torn append";
      CountFaultLocked();
      return CrashedError("append");
    }
    ODE_RETURN_NOT_OK(InjectLocked("append"));
    Status st = base->Append(data);
    if (st.ok()) fs.append_size += data.size();
    return st;
  }();
  FireCrashCallbackIfPending();
  return result;
}

Status FaultInjectionEnv::DoWritableSync(const std::string& path,
                                         WritableFile* base) {
  Status result = [&]() -> Status {
    MutexLock lock(&mu_);
    ODE_RETURN_NOT_OK(BeginMutatingOp("sync"));
    ODE_RETURN_NOT_OK(base->Sync());
    FileState& fs = files_[path];
    fs.synced_size = fs.append_size;
    if (crash_after_sync_) {
      crash_after_sync_ = false;
      crashed_ = true;
      just_crashed_what_ = "post-sync crash";
      CountFaultLocked();
    }
    return Status::OK();
  }();
  FireCrashCallbackIfPending();
  return result;
}

Status FaultInjectionEnv::DoReadAt(RandomRWFile* base, uint64_t offset,
                                   size_t n, char* scratch) {
  Status st;
  uint64_t garbage_seed = 0;
  bool garbage = false;
  {
    MutexLock lock(&mu_);
    st = BeginReadOp("read");
    if (st.ok() && garbage_read_p_ > 0.0 &&
        garbage_rng_.Bernoulli(garbage_read_p_)) {
      garbage = true;
      garbage_seed = garbage_rng_.Next();
      CountFaultLocked();
    }
  }
  FireCrashCallbackIfPending();
  ODE_RETURN_NOT_OK(st);
  ODE_RETURN_NOT_OK(base->ReadAt(offset, n, scratch));
  if (garbage) {
    // The read "succeeds" but hands back scrambled bytes — a misdirected
    // or garbage read the drive did not flag. The on-disk file is intact;
    // only this transfer is wrong, so a checksum-verifying caller that
    // refuses to cache the frame will see good data on retry.
    Random scramble(garbage_seed);
    for (size_t i = 0; i < n; ++i) {
      scratch[i] = static_cast<char>(scratch[i] ^
                                     static_cast<char>(scramble.Next() | 1));
    }
  }
  return Status::OK();
}

Status FaultInjectionEnv::DoWriteAt(const std::string& path,
                                    RandomRWFile* base, uint64_t offset,
                                    Slice data) {
  Status result = [&]() -> Status {
    MutexLock lock(&mu_);
    ODE_RETURN_NOT_OK(BeginMutatingOp("page write"));
    FileState& fs = files_[path];
    if (fs.unsynced_writes.find(offset) == fs.unsynced_writes.end()) {
      // Pre-image of the region (zeros beyond the current EOF, matching
      // what a filesystem exposes for never-written extents).
      std::vector<char> pre(data.size(), 0);
      Result<uint64_t> size = base->Size();
      uint64_t fsize = size.ok() ? size.value() : 0;
      if (offset < fsize) {
        size_t in_bounds = static_cast<size_t>(
            std::min<uint64_t>(data.size(), fsize - offset));
        Status rst = base->ReadAt(offset, in_bounds, pre.data());
        if (!rst.ok()) return rst;
      }
      fs.unsynced_writes[offset] = std::move(pre);
    }
    return base->WriteAt(offset, data);
  }();
  FireCrashCallbackIfPending();
  return result;
}

Status FaultInjectionEnv::DoRWSync(const std::string& path,
                                   RandomRWFile* base) {
  Status result = [&]() -> Status {
    MutexLock lock(&mu_);
    ODE_RETURN_NOT_OK(BeginMutatingOp("file sync"));
    ODE_RETURN_NOT_OK(base->Sync());
    files_[path].unsynced_writes.clear();
    return Status::OK();
  }();
  FireCrashCallbackIfPending();
  return result;
}

// ------------------------------------------------------------ Env calls

Status FaultInjectionEnv::NewWritableFile(const std::string& path,
                                          std::unique_ptr<WritableFile>* out) {
  std::unique_ptr<WritableFile> base;
  {
    MutexLock lock(&mu_);
    if (crashed_) return CrashedError("open");
    ODE_RETURN_NOT_OK(base_->NewWritableFile(path, &base));
    auto [it, fresh] = files_.try_emplace(path);
    if (fresh) {
      // Pre-existing content (from before this env started watching) is
      // assumed durable.
      Result<uint64_t> size = base_->GetFileSize(path);
      it->second.append_size = size.ok() ? size.value() : 0;
      it->second.synced_size = it->second.append_size;
    }
  }
  *out = std::make_unique<FaultWritableFile>(this, path, std::move(base));
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomRWFile(const std::string& path,
                                          std::unique_ptr<RandomRWFile>* out) {
  std::unique_ptr<RandomRWFile> base;
  {
    MutexLock lock(&mu_);
    if (crashed_) return CrashedError("open");
    ODE_RETURN_NOT_OK(base_->NewRandomRWFile(path, &base));
    files_.try_emplace(path);
  }
  *out = std::make_unique<FaultRWFile>(this, path, std::move(base));
  return Status::OK();
}

Status FaultInjectionEnv::ReadFileToString(const std::string& path,
                                           std::string* out) {
  {
    MutexLock lock(&mu_);
    if (crashed_) return CrashedError("read file");
  }
  return base_->ReadFileToString(path, out);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  Status result = [&]() -> Status {
    MutexLock lock(&mu_);
    ODE_RETURN_NOT_OK(BeginMutatingOp("rename"));
    ODE_RETURN_NOT_OK(base_->RenameFile(from, to));
    auto it = files_.find(from);
    if (it != files_.end()) {
      files_[to] = std::move(it->second);
      files_.erase(it);
    }
    return Status::OK();
  }();
  FireCrashCallbackIfPending();
  return result;
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  Status result = [&]() -> Status {
    MutexLock lock(&mu_);
    ODE_RETURN_NOT_OK(BeginMutatingOp("remove"));
    ODE_RETURN_NOT_OK(base_->RemoveFile(path));
    files_.erase(path);
    return Status::OK();
  }();
  FireCrashCallbackIfPending();
  return result;
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  Status result = [&]() -> Status {
    MutexLock lock(&mu_);
    ODE_RETURN_NOT_OK(BeginMutatingOp("truncate"));
    ODE_RETURN_NOT_OK(base_->TruncateFile(path, size));
    FileState& fs = files_[path];
    fs.append_size = size;
    fs.synced_size = size;
    fs.unsynced_writes.clear();
    return Status::OK();
  }();
  FireCrashCallbackIfPending();
  return result;
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectionEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

void FaultInjectionEnv::SleepMicros(uint64_t micros) {
  base_->SleepMicros(micros);
}

// -------------------------------------------------------- fault controls

uint64_t FaultInjectionEnv::ops() const {
  MutexLock lock(&mu_);
  return ops_;
}

void FaultInjectionEnv::SetCrashAtOp(uint64_t op) {
  MutexLock lock(&mu_);
  crash_at_ = op;
}

void FaultInjectionEnv::ArmCrashAfterNextSync() {
  MutexLock lock(&mu_);
  crash_after_sync_ = true;
}

void FaultInjectionEnv::FailNextOps(uint32_t n) {
  MutexLock lock(&mu_);
  fail_next_ = n;
}

void FaultInjectionEnv::SetTransientFaultProbability(double p,
                                                     uint64_t seed) {
  MutexLock lock(&mu_);
  transient_p_ = p;
  rng_ = Random(seed);
}

Status FaultInjectionEnv::FlipBitAt(const std::string& path, uint64_t offset,
                                    uint32_t bit) {
  MutexLock lock(&mu_);
  Result<uint64_t> size = base_->GetFileSize(path);
  ODE_RETURN_NOT_OK(size.status());
  if (offset >= size.value()) {
    return Status::InvalidArgument("bit-flip offset past end of " + path);
  }
  // Read-modify-write one byte through the base env: the flip lands on
  // the "platter", invisible to the durability bookkeeping, exactly like
  // a decay the drive never reported.
  std::unique_ptr<RandomRWFile> file;
  ODE_RETURN_NOT_OK(base_->NewRandomRWFile(path, &file));
  char byte;
  ODE_RETURN_NOT_OK(file->ReadAt(offset, 1, &byte));
  byte = static_cast<char>(byte ^ (1u << (bit & 7)));
  ODE_RETURN_NOT_OK(file->WriteAt(offset, Slice(&byte, 1)));
  ODE_RETURN_NOT_OK(file->Close());
  CountFaultLocked();
  return Status::OK();
}

void FaultInjectionEnv::SetGarbageReadProbability(double p, uint64_t seed) {
  MutexLock lock(&mu_);
  garbage_read_p_ = p;
  garbage_rng_ = Random(seed);
}

void FaultInjectionEnv::SetCrashCallback(
    std::function<void(const char*)> callback) {
  MutexLock lock(&mu_);
  crash_callback_ = std::move(callback);
}

void FaultInjectionEnv::FireCrashCallbackIfPending() {
  std::function<void(const char*)> cb;
  const char* what = nullptr;
  {
    MutexLock lock(&mu_);
    if (just_crashed_what_ == nullptr) return;
    what = just_crashed_what_;
    just_crashed_what_ = nullptr;
    cb = crash_callback_;  // copy so the callback may call SetCrashCallback
  }
  if (cb) cb(what);
}

void FaultInjectionEnv::SetTornWrites(bool on) {
  MutexLock lock(&mu_);
  torn_writes_ = on;
}

bool FaultInjectionEnv::crashed() const {
  MutexLock lock(&mu_);
  return crashed_;
}

uint64_t FaultInjectionEnv::faults_injected() const {
  MutexLock lock(&mu_);
  return fault_count_;
}

Status FaultInjectionEnv::DropUnsyncedData(uint64_t seed) {
  MutexLock lock(&mu_);
  Random rng(seed);
  for (auto& [path, fs] : files_) {
    if (fs.append_size > fs.synced_size) {
      uint64_t unsynced = fs.append_size - fs.synced_size;
      uint64_t keep =
          torn_writes_ ? rng.Uniform(unsynced + 1) : 0;  // torn tail
      ODE_RETURN_NOT_OK(
          base_->TruncateFile(path, fs.synced_size + keep));
      fs.append_size = fs.synced_size + keep;
      // Whatever survived the crash is on the platter now.
      fs.synced_size = fs.append_size;
    }
    if (!fs.unsynced_writes.empty()) {
      std::unique_ptr<RandomRWFile> file;
      ODE_RETURN_NOT_OK(base_->NewRandomRWFile(path, &file));
      for (const auto& [offset, pre] : fs.unsynced_writes) {
        if (rng.Bernoulli(0.5)) continue;  // this page write made it
        ODE_RETURN_NOT_OK(file->WriteAt(offset, Slice(pre)));
      }
      ODE_RETURN_NOT_OK(file->Close());
      fs.unsynced_writes.clear();
    }
  }
  return Status::OK();
}

void FaultInjectionEnv::ResetAfterCrash() {
  MutexLock lock(&mu_);
  crashed_ = false;
  crash_at_ = 0;
  crash_after_sync_ = false;
  fail_next_ = 0;
  just_crashed_what_ = nullptr;
}

}  // namespace ode
