#ifndef ODE_STORAGE_ENV_H_
#define ODE_STORAGE_ENV_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace ode {

class Counter;
class MetricsRegistry;

/// Append-only file handle (the WAL's shape). Append buffers in the
/// application/OS; data is durable only after Sync.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(Slice data) = 0;
  /// Pushes application-level buffers to the OS (no durability).
  virtual Status Flush() = 0;
  /// Flush + fsync: everything appended so far survives a crash.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Random-access read/write handle (the page file's shape).
class RandomRWFile {
 public:
  virtual ~RandomRWFile() = default;

  /// Reads exactly `n` bytes at `offset` into `scratch`. Implementations
  /// retry EINTR and resume short transfers; IOError only on a real error
  /// or end-of-file before `n` bytes.
  virtual Status ReadAt(uint64_t offset, size_t n, char* scratch) = 0;
  virtual Status WriteAt(uint64_t offset, Slice data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
  virtual Result<uint64_t> Size() const = 0;
};

/// File-system abstraction the storage layer runs on. Production code
/// uses Env::Default() (POSIX); tests substitute a FaultInjectionEnv to
/// inject transient errors, torn writes, and crashes at every I/O
/// boundary the WAL, buffer pool, and disk storage manager cross.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment (never destroyed).
  static Env* Default();

  /// Opens `path` for appending, creating it if absent.
  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* out) = 0;

  /// Opens `path` for random read/write, creating it if absent.
  virtual Status NewRandomRWFile(const std::string& path,
                                 std::unique_ptr<RandomRWFile>* out) = 0;

  /// Reads the whole file; NotFound if it does not exist.
  virtual Status ReadFileToString(const std::string& path,
                                  std::string* out) = 0;

  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;
  virtual void SleepMicros(uint64_t micros) = 0;

  /// Points any env-level counters (e.g. injected-fault counts) at
  /// `registry`; nullptr unbinds (callers must unbind before destroying
  /// a registry the env was bound to — an Env usually outlives the
  /// storage manager that bound it). No-op for environments without
  /// instrumentation.
  virtual void BindMetrics(MetricsRegistry* registry) { (void)registry; }
};

/// Bounded retry-with-exponential-backoff policy for transient I/O
/// errors. `attempts` counts retries after the first try (0 = fail
/// fast, the default). Backoff doubles per retry starting at
/// `backoff_us`. Only kIOError is retried: corruption, not-found, and
/// logic errors never become less wrong by waiting.
struct IoRetryPolicy {
  Env* env = nullptr;
  uint32_t attempts = 0;
  uint32_t backoff_us = 100;
  /// Monitoring (may be null): successful-retry and gave-up counts.
  Counter* retries = nullptr;
  Counter* exhausted = nullptr;
};

/// Runs `op`, retrying per `policy` (null policy = single attempt).
/// `what` labels the operation in the exhaustion log line.
Status RetryIo(const IoRetryPolicy* policy, const char* what,
               const std::function<Status()>& op);

}  // namespace ode

#endif  // ODE_STORAGE_ENV_H_
