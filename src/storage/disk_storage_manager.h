#ifndef ODE_STORAGE_DISK_STORAGE_MANAGER_H_
#define ODE_STORAGE_DISK_STORAGE_MANAGER_H_

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "storage/env.h"
#include "storage/page.h"
#include "storage/storage_manager.h"
#include "storage/wal.h"

namespace ode {

/// Buffer pool over the data file: a fixed number of page frames with LRU
/// replacement. Dirty frames are written back on eviction, FlushAll, or
/// checkpoint. Not thread-safe by itself; the storage manager serializes
/// access. Page I/O goes through the given RandomRWFile (and optional
/// transient-error retry policy), so a FaultInjectionEnv sees every read
/// and write-back.
class BufferPool {
 public:
  BufferPool(RandomRWFile* file, size_t capacity,
             const IoRetryPolicy* retry = nullptr);

  /// Returns the frame for `page_id`, reading it from disk on a miss.
  Status Get(uint32_t page_id, Page** out);

  /// Like Get but formats a fresh page instead of reading disk.
  Status Create(uint32_t page_id, Page** out);

  void MarkDirty(uint32_t page_id);

  /// Drops a page from the pool without writing it (used when a page is
  /// freed wholesale).
  void Discard(uint32_t page_id);

  Status FlushAll();

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Frame {
    uint32_t page_id = 0;
    bool dirty = false;
    Page page;
  };

  Status WriteFrame(const Frame& frame);
  Status EvictIfFull();
  // Moves the frame to MRU position and returns it.
  Frame* Touch(uint32_t page_id);

  RandomRWFile* file_;
  size_t capacity_;
  const IoRetryPolicy* retry_;
  // MRU at front.
  std::list<Frame> frames_;
  std::unordered_map<uint32_t, std::list<Frame>::iterator> index_;
  uint64_t reads_ = 0, writes_ = 0, hits_ = 0, misses_ = 0;
};

/// Disk-based storage manager — the EOS analogue. Objects live in slotted
/// pages (large objects spill into overflow-page chains); an in-memory
/// oid -> (page, slot) index is rebuilt by scanning pages on open; a
/// redo-only WAL plus no-steal transaction workspaces provide atomicity
/// and crash recovery.
///
/// Failure model (docs/storage.md has the full matrix):
///  - Transient I/O errors are retried with exponential backoff when
///    Options::io_retry_attempts > 0.
///  - An I/O failure inside the durable section of CommitTxn *wedges*
///    the store: pages and WAL may disagree about a half-applied
///    transaction, so every later operation fails with kIOError until the
///    store is reopened and WAL recovery reconciles them. Checkpointing a
///    wedged store (which would truncate the WAL) is refused.
///  - Mid-file WAL corruption detected at Open drops the store into
///    read-only *salvage mode*: the intact WAL prefix is replayed, reads
///    work, but every mutation returns kCorruption and no checkpoint ever
///    truncates the damaged log (gauge ode_wal_salvage_mode = 1).
class DiskStorageManager final : public StorageManager {
 public:
  struct Options {
    size_t buffer_pool_pages = 256;
    /// Payloads above this many bytes go to overflow chains.
    size_t inline_limit = 2048;
    /// If false, skip the fsync on commit (benchmarks only; a logged
    /// warning at Open makes sure it cannot ship silently).
    bool sync_commits = true;
    /// File-system abstraction; null means Env::Default(). Not owned.
    Env* env = nullptr;
    /// Retries per transient (kIOError) I/O failure; 0 = fail fast.
    uint32_t io_retry_attempts = 0;
    /// First retry backoff (doubles per retry).
    uint32_t io_retry_backoff_us = 100;
  };

  explicit DiskStorageManager(std::string path)
      : DiskStorageManager(std::move(path), Options()) {}
  DiskStorageManager(std::string path, Options options);
  ~DiskStorageManager() override;

  DiskStorageManager(const DiskStorageManager&) = delete;
  DiskStorageManager& operator=(const DiskStorageManager&) = delete;

  Status Open() override;
  Status Close() override;

  Result<Oid> Allocate(TxnId txn, Slice data) override;
  Status Read(TxnId txn, Oid oid, std::vector<char>* out) override;
  Status Write(TxnId txn, Oid oid, Slice data) override;
  Status Free(TxnId txn, Oid oid) override;
  bool Exists(TxnId txn, Oid oid) override;

  Status SetRoot(TxnId txn, const std::string& name, Oid oid) override;
  Result<Oid> GetRoot(TxnId txn, const std::string& name) override;

  Status BeginTxn(TxnId txn) override;
  Status CommitTxn(TxnId txn) override;
  Status AbortTxn(TxnId txn) override;

  Status Checkpoint() override;

  /// Test hook: tears the manager down WITHOUT flushing dirty pages or
  /// checkpointing, as a process crash would. The next Open() on the same
  /// path must recover committed state from pages + WAL redo alone.
  void SimulateCrash();

  /// True if Open() found mid-file WAL corruption and the store is
  /// serving reads from the salvaged prefix (mutations are refused).
  bool salvage_mode() const;

  /// True after a mid-commit I/O failure left pages and WAL possibly
  /// disagreeing; reopen to recover.
  bool wedged() const;

  StorageStats stats() const override;

  void BindMetrics(MetricsRegistry* registry) override;

 private:
  using Workspace = storage_internal::TxnWorkspace;

  struct Loc {
    uint32_t page = 0;
    uint16_t slot = 0;
  };

  Workspace* FindWorkspace(TxnId txn);

  // --- committed-state operations (mu_ held) ---
  Status CheckWritableLocked() const;
  Status ReadCommitted(Oid oid, std::vector<char>* out);
  Status ApplyUpsert(Oid oid, Slice image);
  Status ApplyFree(Oid oid);
  Status ApplyRoots();
  Status InsertRecord(Oid oid, Slice image);
  Status FreeOverflowChain(uint32_t first_page);
  Status WriteOverflowChain(Slice image, uint32_t* first_page);
  Status ReadOverflowChain(uint32_t first_page, uint64_t total_len,
                           std::vector<char>* out);
  uint32_t AllocPage();
  void ReleasePage(uint32_t page_id);
  Status ReadPage(uint32_t page_id, char* buf);
  Status WritePage(uint32_t page_id, const char* buf);
  Status ScanAndRebuild();
  Status ReplayWal();
  Status WriteHeader();
  Status ApplyCommitLocked(TxnId txn, Workspace& ws);
  Status CheckpointLocked();

  std::string path_;
  Options options_;
  Env* env_ = nullptr;
  bool open_ = false;

  mutable std::mutex mu_;
  std::unique_ptr<RandomRWFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Wal> wal_;
  bool wedged_ = false;
  bool salvage_ = false;
  std::unordered_map<uint64_t, Loc> index_;
  std::map<uint32_t, size_t> space_map_;  // slotted page -> free bytes
  std::vector<uint32_t> free_pages_;
  std::map<std::string, Oid> roots_;
  std::unordered_map<TxnId, Workspace> workspaces_;
  uint64_t next_oid_ = 2;  // oid 1 is reserved for the roots directory
  uint32_t page_count_ = 1;  // page 0 is the file header

  /// Retry policy shared by the WAL and buffer pool. BindMetrics updates
  /// its counter pointers in place, so the Wal/BufferPool (which hold a
  /// pointer to this struct) pick up a registry rebind without reopening.
  IoRetryPolicy retry_policy_;

  // Metrics (see StorageManager::BindMetrics).
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  Counter* object_reads_ = nullptr;
  Counter* object_writes_ = nullptr;
  Counter* wal_records_ = nullptr;
  Gauge* salvage_gauge_ = nullptr;
  Histogram* read_latency_ = nullptr;
  Histogram* write_latency_ = nullptr;
  Histogram* wal_append_latency_ = nullptr;
};

}  // namespace ode

#endif  // ODE_STORAGE_DISK_STORAGE_MANAGER_H_
