#ifndef ODE_STORAGE_DISK_STORAGE_MANAGER_H_
#define ODE_STORAGE_DISK_STORAGE_MANAGER_H_

#include <atomic>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/ordered_mutex.h"
#include "common/thread_annotations.h"
#include "common/tracing.h"
#include "storage/env.h"
#include "storage/page.h"
#include "storage/storage_manager.h"
#include "storage/wal.h"

namespace ode {

/// Buffer pool over the data file: a fixed number of page frames with LRU
/// replacement. Dirty frames are written back on eviction, FlushAll, or
/// checkpoint. Not thread-safe by itself; the storage manager serializes
/// access (lock-rank exemption: the pool deliberately has no mutex of
/// its own — every entry point is reached either with the manager's
/// state_mu_ held exclusive, or with state_mu_ shared plus pool_mu_,
/// so annotating members here would mis-state the ownership).
/// Page I/O goes through the given RandomRWFile (and optional
/// transient-error retry policy), so a FaultInjectionEnv sees every read
/// and write-back.
///
/// Corruption defense: with `verify_checksums` on, every frame read from
/// disk has its CRC32C verified (and its page id cross-checked against
/// the requested id), and every write-back restamps the checksum. A page
/// that fails verification — or whose slot directory fails structural
/// validation, which is checked unconditionally — is NOT cached: Get
/// returns kCorruption and leaves the pool untouched, so a transient
/// garbage read cannot poison the pool and a retry sees the real bytes.
class BufferPool {
 public:
  BufferPool(RandomRWFile* file, size_t capacity,
             const IoRetryPolicy* retry = nullptr,
             bool verify_checksums = true);

  /// Returns the frame for `page_id`, reading it from disk on a miss.
  Status Get(uint32_t page_id, Page** out);

  /// Like Get but formats a fresh page instead of reading disk.
  Status Create(uint32_t page_id, Page** out);

  void MarkDirty(uint32_t page_id);

  /// Drops a page from the pool without writing it (used when a page is
  /// freed wholesale).
  void Discard(uint32_t page_id);

  Status FlushAll();

  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Frame {
    uint32_t page_id = 0;
    bool dirty = false;
    Page page;
  };

  /// Restamps the frame's checksum (when verification is on) and writes
  /// it back.
  Status WriteFrame(Frame& frame);
  Status EvictIfFull();
  // Moves the frame to MRU position and returns it.
  Frame* Touch(uint32_t page_id);

  RandomRWFile* file_;
  size_t capacity_;
  const IoRetryPolicy* retry_;
  bool verify_;
  // MRU at front.
  std::list<Frame> frames_;
  std::unordered_map<uint32_t, std::list<Frame>::iterator> index_;
  // Relaxed: bumped under the storage manager's pool serialization, read
  // by stats() without it.
  std::atomic<uint64_t> reads_{0}, writes_{0}, hits_{0}, misses_{0};
};

/// Disk-based storage manager — the EOS analogue. Objects live in slotted
/// pages (large objects spill into overflow-page chains); an in-memory
/// oid -> (page, slot) index is rebuilt by scanning pages on open; a
/// redo-only WAL plus no-steal transaction workspaces provide atomicity
/// and crash recovery.
///
/// Commits run through a group-commit pipeline (docs/storage.md, "Group
/// commit"): concurrent committers park in a queue, the first arrival
/// becomes the leader, appends every member's kBegin..kCommit frame, and
/// issues ONE fsync for the batch; pages are applied batch-by-batch in
/// WAL order under a committed-state lock that readers share, so reads
/// and BeginTxn never wait behind an fsync. A committer is acked only
/// after the fsync covering its kCommit record (and the batch's page
/// application) succeeded.
///
/// Failure model (docs/storage.md has the full matrix):
///  - Transient I/O errors are retried with exponential backoff when
///    Options::io_retry_attempts > 0.
///  - An I/O failure inside the durable section of CommitTxn *wedges*
///    the store: pages and WAL may disagree about a half-applied
///    transaction, so every later operation fails with kIOError until the
///    store is reopened and WAL recovery reconciles them. Checkpointing a
///    wedged store (which would truncate the WAL) is refused.
///  - Mid-file WAL corruption detected at Open drops the store into
///    read-only *salvage mode*: the intact WAL prefix is replayed, reads
///    work, but every mutation returns kCorruption and no checkpoint ever
///    truncates the damaged log (gauge ode_wal_salvage_mode = 1).
class DiskStorageManager final : public StorageManager {
 public:
  struct Options {
    size_t buffer_pool_pages = 256;
    /// Payloads above this many bytes go to overflow chains.
    size_t inline_limit = 2048;
    /// If false, skip the fsync on commit (benchmarks only; a logged
    /// warning at Open makes sure it cannot ship silently).
    bool sync_commits = true;
    /// File-system abstraction; null means Env::Default(). Not owned.
    Env* env = nullptr;
    /// Retries per transient (kIOError) I/O failure; 0 = fail fast.
    uint32_t io_retry_attempts = 0;
    /// First retry backoff (doubles per retry).
    uint32_t io_retry_backoff_us = 100;
    /// Batch concurrent committers into one WAL fsync (group commit:
    /// the first committer to arrive becomes the leader, appends every
    /// waiting follower's records, and fsyncs once for the group). Off
    /// means every committer appends and fsyncs alone, serialized on
    /// the WAL-order lock — the pre-group-commit behaviour.
    bool group_commit = true;
    /// Upper bound on transactions folded into one group-commit batch.
    size_t commit_batch_max_txns = 64;
    /// How long a freshly elected leader lingers for more committers to
    /// join its batch before it fsyncs (0 = never wait; batches still
    /// form naturally from committers that queue up behind an in-flight
    /// fsync). Mostly a test/benchmark knob.
    uint32_t commit_batch_max_wait_us = 0;
    /// If false, skip stamping AND verifying page CRC32Cs (benchmarks
    /// only, like sync_commits=false: a store written this way carries
    /// stale checksums and will fail a later verifying open).
    /// Slot-directory structural validation stays on regardless.
    bool verify_page_checksums = true;
  };

  explicit DiskStorageManager(std::string path)
      : DiskStorageManager(std::move(path), Options()) {}
  DiskStorageManager(std::string path, Options options);
  ~DiskStorageManager() override;

  DiskStorageManager(const DiskStorageManager&) = delete;
  DiskStorageManager& operator=(const DiskStorageManager&) = delete;

  Status Open() override;
  Status Close() override;

  Result<Oid> Allocate(TxnId txn, Slice data) override;
  Status Read(TxnId txn, Oid oid, std::vector<char>* out) override;
  Status Write(TxnId txn, Oid oid, Slice data) override;
  Status Free(TxnId txn, Oid oid) override;
  bool Exists(TxnId txn, Oid oid) override;

  Status SetRoot(TxnId txn, const std::string& name, Oid oid) override;
  Result<Oid> GetRoot(TxnId txn, const std::string& name) override;

  Status BeginTxn(TxnId txn) override;
  Status CommitTxn(TxnId txn) override;
  Status AbortTxn(TxnId txn) override;

  Status Checkpoint() override;

  /// Test hook: tears the manager down WITHOUT flushing dirty pages or
  /// checkpointing, as a process crash would. The next Open() on the same
  /// path must recover committed state from pages + WAL redo alone.
  void SimulateCrash();

  /// True if Open() found mid-file WAL corruption and the store is
  /// serving reads from the salvaged prefix (mutations are refused).
  bool salvage_mode() const;

  /// True after a mid-commit I/O failure left pages and WAL possibly
  /// disagreeing; reopen to recover.
  bool wedged() const;

  /// Scrub pass: verifies every page's checksum + structure, repairs
  /// corrupt pages whose objects the WAL still covers, quarantines the
  /// rest. Drains the commit pipeline and holds the state lock exclusive
  /// for the sweep. See StorageManager::VerifyIntegrity.
  Result<ScrubReport> VerifyIntegrity() override;

  /// True while any page is quarantined (or losses are unenumerable):
  /// the store serves intact objects normally, refuses reads of lost
  /// ones with kCorruption, and — because the lost-object enumeration
  /// from a corrupt page is best-effort — reports kCorruption instead
  /// of kNotFound for ANY absent oid.
  bool degraded() const;

  /// Oids known lost to quarantined pages (best-effort when degraded()
  /// came from an open-time scan; exact for a runtime scrub).
  std::vector<Oid> LostObjects() const;

  StorageStats stats() const override;

  CommitBatchInfo LastCommitBatch() const override;

  void BindMetrics(MetricsRegistry* registry) override;

  /// Commit-pipeline spans (WAL append, group fsync, page apply) for
  /// sampled transactions, plus the flight-recorder dump hook. If the
  /// store is already in salvage mode when the tracer arrives (Open runs
  /// before Database wires the tracer), the dump fires immediately.
  void BindTracer(Tracer* tracer) override;

 private:
  using Workspace = storage_internal::TxnWorkspace;

  struct Loc {
    uint32_t page = 0;
    uint16_t slot = 0;
  };

  /// One committing transaction parked in the group-commit queue. Lives
  /// on the committing thread's stack; the leader fills status/done under
  /// commit_mu_ and the owner reads them under the same lock.
  struct CommitRequest {
    TxnId txn = 0;
    Workspace* ws = nullptr;
    Status status;
    uint64_t batch_id = 0;
    uint32_t batch_size = 0;
    bool done = false;
  };

  Workspace* FindWorkspace(TxnId txn);

  /// Lock-free writability gate (atomics only).
  Status CheckWritable() const;

  /// The group-commit pipeline: park in the queue, become leader or get
  /// carried by one, one fsync per batch, pages applied in WAL order.
  /// NO_TSA: the leader/follower handoff locks and unlocks commit_mu_
  /// several times along one control path (accumulate → form batch →
  /// WAL ticket → apply ticket → ack), which the static analysis cannot
  /// model; the runtime lock-rank validator still checks every acquire.
  Status CommitThroughQueue(TxnId txn,
                            Workspace* ws) ODE_NO_THREAD_SAFETY_ANALYSIS;
  /// Dumps the tracer's span ring to `path_ + ".flight.json"` (plain
  /// stdio, works while wedged). No-op without a bound tracer.
  void DumpFlightRecorder(const std::string& reason);
  /// Appends every batch member's kBegin..kCommit frame and issues the
  /// single group fsync. Runs under the caller's WAL ticket.
  Status AppendBatchWal(const std::vector<CommitRequest*>& batch)
      ODE_REQUIRES(wal_mu_);
  /// Waits (commit_mu_ held, so no new batch can be numbered) until
  /// every numbered batch has applied its pages, so the caller can take
  /// state_mu_ knowing the pipeline is idle.
  void DrainCommitPipelineLocked() ODE_REQUIRES(commit_mu_);

  // --- committed-state operations. Mutators require state_mu_
  // exclusive; the read-path trio (ReadCommitted / ReadOverflowChain /
  // AbsentOidStatus) is also called with state_mu_ shared, in which
  // case the caller serializes buffer-pool access via pool_mu_ (an
  // exclusive state_mu_ holder owns the pool outright — see pool_). ---
  Status ReadCommitted(Oid oid, std::vector<char>* out)
      ODE_REQUIRES_SHARED(state_mu_);
  Status ApplyWorkspacePages(Workspace& ws) ODE_REQUIRES(state_mu_);
  Status ApplyUpsert(Oid oid, Slice image) ODE_REQUIRES(state_mu_);
  Status ApplyFree(Oid oid) ODE_REQUIRES(state_mu_);
  Status ApplyRoots() ODE_REQUIRES(state_mu_);
  Status InsertRecord(Oid oid, Slice image) ODE_REQUIRES(state_mu_);
  Status FreeOverflowChain(uint32_t first_page) ODE_REQUIRES(state_mu_);
  Status WriteOverflowChain(Slice image, uint32_t* first_page)
      ODE_REQUIRES(state_mu_);
  Status ReadOverflowChain(uint32_t first_page, uint64_t total_len,
                           std::vector<char>* out)
      ODE_REQUIRES_SHARED(state_mu_);
  uint32_t AllocPage() ODE_REQUIRES(state_mu_);
  void ReleasePage(uint32_t page_id) ODE_REQUIRES(state_mu_);
  Status ReadPage(uint32_t page_id, char* buf);
  Status WritePage(uint32_t page_id, const char* buf);
  Status ScanAndRebuild() ODE_REQUIRES(state_mu_);
  Status ReplayWal() ODE_REQUIRES(state_mu_);
  Status WriteHeader() ODE_REQUIRES(state_mu_);
  Status CheckpointLocked() ODE_REQUIRES(state_mu_);
  /// What a lookup miss means: kNotFound normally, kCorruption for a
  /// known-lost oid or while the store is degraded (the lost-object list
  /// is best-effort, so any miss is suspect).
  Status AbsentOidStatus(Oid oid) const ODE_REQUIRES_SHARED(state_mu_);
  /// Post-replay: releases quarantined pages whose every enumerated
  /// object was resolved (repaired by WAL redo or explicitly freed).
  void ReconcileQuarantineLocked() ODE_REQUIRES(state_mu_);
  /// Reformats a corrupt page as empty and returns it to the free list
  /// (dropping any stale pool frame / space-map entry first).
  void ReformatCorruptPage(uint32_t page_id) ODE_REQUIRES(state_mu_);

  std::string path_;
  Options options_;
  Env* env_ = nullptr;

  // --- lock hierarchy (always acquired in this order) ---
  //   commit_mu_ > wal_mu_ > apply_mu_ > state_mu_ > pool_mu_;
  //   ws_mu_ is a leaf.
  //
  // The order is machine-enforced: each mutex carries its lock_rank
  // (kStorageCommit < kStorageWal < ... < kStorageWorkspaces), so a
  // debug/sanitizer build aborts on any out-of-order acquire, and Clang
  // -Wthread-safety checks the ODE_GUARDED_BY/ODE_REQUIRES annotations.
  //
  // commit_mu_ guards the commit queue and batch numbering: the first
  // queued committer becomes the leader, claims everything waiting (up
  // to commit_batch_max_txns) as one numbered batch, and releases the
  // lock — so new committers enqueue freely while the batch is fsyncing
  // and form the next batch. wal_mu_/wal_seq_ hand out WAL tickets:
  // batches append + fsync strictly in batch order, so the durable log
  // is a clean sequence of kBegin..kCommit frames and a wedge set by a
  // failed batch is observed before any later batch touches the log.
  // apply_mu_/applied_seq_ hand out apply tickets so batches reach pages
  // in WAL order even though the next batch's fsync is already in
  // flight. state_mu_ guards committed state (index_, space_map_,
  // free_pages_, roots_, page_count_, the buffer pool): batch
  // application and checkpoint/open/close take it exclusive; the read
  // fast lane (Read/GetRoot/Exists/stats) takes it shared and never
  // waits behind an fsync. pool_mu_ serializes buffer-pool LRU mutation
  // among shared-mode readers (an exclusive state_mu_ holder owns the
  // pool outright). ws_mu_ guards the workspaces_ map shape; a Workspace
  // body is only touched by its owning transaction's thread — or by a
  // commit leader while that owner is parked in the queue.
  mutable OrderedMutex commit_mu_{lock_rank::kStorageCommit,
                                  "disk.commit_mu"};
  CondVar commit_cv_;
  std::deque<CommitRequest*> commit_queue_ ODE_GUARDED_BY(commit_mu_);
  uint64_t next_batch_seq_ ODE_GUARDED_BY(commit_mu_) = 1;

  OrderedMutex wal_mu_{lock_rank::kStorageWal, "disk.wal_mu"};
  CondVar wal_cv_;
  // Last batch through the WAL.
  uint64_t wal_seq_ ODE_GUARDED_BY(wal_mu_) = 0;

  mutable OrderedMutex apply_mu_{lock_rank::kStorageApply, "disk.apply_mu"};
  CondVar apply_cv_;
  uint64_t applied_seq_ ODE_GUARDED_BY(apply_mu_) = 0;

  mutable OrderedSharedMutex state_mu_{lock_rank::kStorageState,
                                       "disk.state_mu"};
  mutable OrderedMutex pool_mu_{lock_rank::kStoragePool, "disk.pool_mu"};
  mutable OrderedMutex ws_mu_{lock_rank::kStorageWorkspaces, "disk.ws_mu"};

  // file_/pool_/wal_ carry no ODE_GUARDED_BY (annotation exemption):
  // the unique_ptrs are set/reset only inside Open/Close/SimulateCrash
  // (full exclusive stack held), but the pointees are used under the
  // dual pool discipline documented above — state_mu_ exclusive OR
  // state_mu_ shared + pool_mu_ for the pool, wal_mu_ for wal_ appends
  // plus state_mu_ exclusive for replay/truncate — which a single
  // guarded_by attribute cannot express.
  std::unique_ptr<RandomRWFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Wal> wal_;
  // Lock-free gate flags; every lock-free load carries an explicit
  // memory order naming its pairing store (see CheckWritable).
  std::atomic<bool> open_{false};
  std::atomic<bool> wedged_{false};
  std::atomic<bool> salvage_{false};
  std::unordered_map<uint64_t, Loc> index_ ODE_GUARDED_BY(state_mu_);
  // Slotted page -> free bytes.
  std::map<uint32_t, size_t> space_map_ ODE_GUARDED_BY(state_mu_);
  std::vector<uint32_t> free_pages_ ODE_GUARDED_BY(state_mu_);
  std::map<std::string, Oid> roots_ ODE_GUARDED_BY(state_mu_);
  // --- silent-corruption quarantine (under state_mu_) ---
  // Pages whose checksum/structure failed and which WAL redo could not
  // repair. Never allocated from, never read through the pool.
  std::unordered_set<uint32_t> quarantined_pages_ ODE_GUARDED_BY(state_mu_);
  // Objects whose committed image lived on a quarantined page
  // (best-effort enumeration; see AbsentOidStatus).
  std::unordered_set<uint64_t> lost_oids_ ODE_GUARDED_BY(state_mu_);
  // Quarantined page -> the oids enumerated from it, kept so a later
  // repair of all of them lets ReconcileQuarantineLocked free the page.
  // Pages too mangled to enumerate have no entry (and set
  // unknown_losses_ instead).
  std::unordered_map<uint32_t, std::vector<uint64_t>> quarantine_oids_
      ODE_GUARDED_BY(state_mu_);
  // A quarantined page could not be parsed at all, so lost_oids_ may be
  // incomplete. Sticky until a clean reopen.
  bool unknown_losses_ ODE_GUARDED_BY(state_mu_) = false;
  // The roots directory object (oid 1) was lost: name lookups that miss
  // return kCorruption, since the mapping may simply be unreadable.
  bool roots_lost_ ODE_GUARDED_BY(state_mu_) = false;
  std::unordered_map<TxnId, Workspace> workspaces_ ODE_GUARDED_BY(ws_mu_);
  // oid 1 is reserved for the roots directory. Atomic so Allocate can
  // mint oids without touching any state lock.
  std::atomic<uint64_t> next_oid_{2};
  uint32_t page_count_ ODE_GUARDED_BY(state_mu_) = 1;  // page 0 = header

  /// Retry policy shared by the WAL and buffer pool. BindMetrics updates
  /// its counter pointers in place, so the Wal/BufferPool (which hold a
  /// pointer to this struct) pick up a registry rebind without reopening.
  IoRetryPolicy retry_policy_;

  // Metrics (see StorageManager::BindMetrics).
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  Counter* object_reads_ = nullptr;
  Counter* object_writes_ = nullptr;
  Counter* wal_records_ = nullptr;
  Counter* commit_fsyncs_ = nullptr;
  Counter* commit_fsyncs_saved_ = nullptr;
  Counter* scrub_pages_ = nullptr;
  Counter* scrub_repaired_ = nullptr;
  Counter* scrub_lost_ = nullptr;
  Gauge* salvage_gauge_ = nullptr;
  Gauge* quarantined_gauge_ = nullptr;
  Histogram* read_latency_ = nullptr;
  Histogram* write_latency_ = nullptr;
  Histogram* wal_append_latency_ = nullptr;
  Histogram* wal_fsync_latency_ = nullptr;
  Histogram* batch_size_hist_ = nullptr;
  Histogram* leader_wait_latency_ = nullptr;
  Tracer* tracer_ = nullptr;  // see BindTracer
};

}  // namespace ode

#endif  // ODE_STORAGE_DISK_STORAGE_MANAGER_H_
