#ifndef ODE_STORAGE_DISK_STORAGE_MANAGER_H_
#define ODE_STORAGE_DISK_STORAGE_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/tracing.h"
#include "storage/env.h"
#include "storage/page.h"
#include "storage/storage_manager.h"
#include "storage/wal.h"

namespace ode {

/// Buffer pool over the data file: a fixed number of page frames with LRU
/// replacement. Dirty frames are written back on eviction, FlushAll, or
/// checkpoint. Not thread-safe by itself; the storage manager serializes
/// access. Page I/O goes through the given RandomRWFile (and optional
/// transient-error retry policy), so a FaultInjectionEnv sees every read
/// and write-back.
///
/// Corruption defense: with `verify_checksums` on, every frame read from
/// disk has its CRC32C verified (and its page id cross-checked against
/// the requested id), and every write-back restamps the checksum. A page
/// that fails verification — or whose slot directory fails structural
/// validation, which is checked unconditionally — is NOT cached: Get
/// returns kCorruption and leaves the pool untouched, so a transient
/// garbage read cannot poison the pool and a retry sees the real bytes.
class BufferPool {
 public:
  BufferPool(RandomRWFile* file, size_t capacity,
             const IoRetryPolicy* retry = nullptr,
             bool verify_checksums = true);

  /// Returns the frame for `page_id`, reading it from disk on a miss.
  Status Get(uint32_t page_id, Page** out);

  /// Like Get but formats a fresh page instead of reading disk.
  Status Create(uint32_t page_id, Page** out);

  void MarkDirty(uint32_t page_id);

  /// Drops a page from the pool without writing it (used when a page is
  /// freed wholesale).
  void Discard(uint32_t page_id);

  Status FlushAll();

  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Frame {
    uint32_t page_id = 0;
    bool dirty = false;
    Page page;
  };

  /// Restamps the frame's checksum (when verification is on) and writes
  /// it back.
  Status WriteFrame(Frame& frame);
  Status EvictIfFull();
  // Moves the frame to MRU position and returns it.
  Frame* Touch(uint32_t page_id);

  RandomRWFile* file_;
  size_t capacity_;
  const IoRetryPolicy* retry_;
  bool verify_;
  // MRU at front.
  std::list<Frame> frames_;
  std::unordered_map<uint32_t, std::list<Frame>::iterator> index_;
  // Relaxed: bumped under the storage manager's pool serialization, read
  // by stats() without it.
  std::atomic<uint64_t> reads_{0}, writes_{0}, hits_{0}, misses_{0};
};

/// Disk-based storage manager — the EOS analogue. Objects live in slotted
/// pages (large objects spill into overflow-page chains); an in-memory
/// oid -> (page, slot) index is rebuilt by scanning pages on open; a
/// redo-only WAL plus no-steal transaction workspaces provide atomicity
/// and crash recovery.
///
/// Commits run through a group-commit pipeline (docs/storage.md, "Group
/// commit"): concurrent committers park in a queue, the first arrival
/// becomes the leader, appends every member's kBegin..kCommit frame, and
/// issues ONE fsync for the batch; pages are applied batch-by-batch in
/// WAL order under a committed-state lock that readers share, so reads
/// and BeginTxn never wait behind an fsync. A committer is acked only
/// after the fsync covering its kCommit record (and the batch's page
/// application) succeeded.
///
/// Failure model (docs/storage.md has the full matrix):
///  - Transient I/O errors are retried with exponential backoff when
///    Options::io_retry_attempts > 0.
///  - An I/O failure inside the durable section of CommitTxn *wedges*
///    the store: pages and WAL may disagree about a half-applied
///    transaction, so every later operation fails with kIOError until the
///    store is reopened and WAL recovery reconciles them. Checkpointing a
///    wedged store (which would truncate the WAL) is refused.
///  - Mid-file WAL corruption detected at Open drops the store into
///    read-only *salvage mode*: the intact WAL prefix is replayed, reads
///    work, but every mutation returns kCorruption and no checkpoint ever
///    truncates the damaged log (gauge ode_wal_salvage_mode = 1).
class DiskStorageManager final : public StorageManager {
 public:
  struct Options {
    size_t buffer_pool_pages = 256;
    /// Payloads above this many bytes go to overflow chains.
    size_t inline_limit = 2048;
    /// If false, skip the fsync on commit (benchmarks only; a logged
    /// warning at Open makes sure it cannot ship silently).
    bool sync_commits = true;
    /// File-system abstraction; null means Env::Default(). Not owned.
    Env* env = nullptr;
    /// Retries per transient (kIOError) I/O failure; 0 = fail fast.
    uint32_t io_retry_attempts = 0;
    /// First retry backoff (doubles per retry).
    uint32_t io_retry_backoff_us = 100;
    /// Batch concurrent committers into one WAL fsync (group commit:
    /// the first committer to arrive becomes the leader, appends every
    /// waiting follower's records, and fsyncs once for the group). Off
    /// means every committer appends and fsyncs alone, serialized on
    /// the WAL-order lock — the pre-group-commit behaviour.
    bool group_commit = true;
    /// Upper bound on transactions folded into one group-commit batch.
    size_t commit_batch_max_txns = 64;
    /// How long a freshly elected leader lingers for more committers to
    /// join its batch before it fsyncs (0 = never wait; batches still
    /// form naturally from committers that queue up behind an in-flight
    /// fsync). Mostly a test/benchmark knob.
    uint32_t commit_batch_max_wait_us = 0;
    /// If false, skip stamping AND verifying page CRC32Cs (benchmarks
    /// only, like sync_commits=false: a store written this way carries
    /// stale checksums and will fail a later verifying open).
    /// Slot-directory structural validation stays on regardless.
    bool verify_page_checksums = true;
  };

  explicit DiskStorageManager(std::string path)
      : DiskStorageManager(std::move(path), Options()) {}
  DiskStorageManager(std::string path, Options options);
  ~DiskStorageManager() override;

  DiskStorageManager(const DiskStorageManager&) = delete;
  DiskStorageManager& operator=(const DiskStorageManager&) = delete;

  Status Open() override;
  Status Close() override;

  Result<Oid> Allocate(TxnId txn, Slice data) override;
  Status Read(TxnId txn, Oid oid, std::vector<char>* out) override;
  Status Write(TxnId txn, Oid oid, Slice data) override;
  Status Free(TxnId txn, Oid oid) override;
  bool Exists(TxnId txn, Oid oid) override;

  Status SetRoot(TxnId txn, const std::string& name, Oid oid) override;
  Result<Oid> GetRoot(TxnId txn, const std::string& name) override;

  Status BeginTxn(TxnId txn) override;
  Status CommitTxn(TxnId txn) override;
  Status AbortTxn(TxnId txn) override;

  Status Checkpoint() override;

  /// Test hook: tears the manager down WITHOUT flushing dirty pages or
  /// checkpointing, as a process crash would. The next Open() on the same
  /// path must recover committed state from pages + WAL redo alone.
  void SimulateCrash();

  /// True if Open() found mid-file WAL corruption and the store is
  /// serving reads from the salvaged prefix (mutations are refused).
  bool salvage_mode() const;

  /// True after a mid-commit I/O failure left pages and WAL possibly
  /// disagreeing; reopen to recover.
  bool wedged() const;

  /// Scrub pass: verifies every page's checksum + structure, repairs
  /// corrupt pages whose objects the WAL still covers, quarantines the
  /// rest. Drains the commit pipeline and holds the state lock exclusive
  /// for the sweep. See StorageManager::VerifyIntegrity.
  Result<ScrubReport> VerifyIntegrity() override;

  /// True while any page is quarantined (or losses are unenumerable):
  /// the store serves intact objects normally, refuses reads of lost
  /// ones with kCorruption, and — because the lost-object enumeration
  /// from a corrupt page is best-effort — reports kCorruption instead
  /// of kNotFound for ANY absent oid.
  bool degraded() const;

  /// Oids known lost to quarantined pages (best-effort when degraded()
  /// came from an open-time scan; exact for a runtime scrub).
  std::vector<Oid> LostObjects() const;

  StorageStats stats() const override;

  CommitBatchInfo LastCommitBatch() const override;

  void BindMetrics(MetricsRegistry* registry) override;

  /// Commit-pipeline spans (WAL append, group fsync, page apply) for
  /// sampled transactions, plus the flight-recorder dump hook. If the
  /// store is already in salvage mode when the tracer arrives (Open runs
  /// before Database wires the tracer), the dump fires immediately.
  void BindTracer(Tracer* tracer) override;

 private:
  using Workspace = storage_internal::TxnWorkspace;

  struct Loc {
    uint32_t page = 0;
    uint16_t slot = 0;
  };

  /// One committing transaction parked in the group-commit queue. Lives
  /// on the committing thread's stack; the leader fills status/done under
  /// commit_mu_ and the owner reads them under the same lock.
  struct CommitRequest {
    TxnId txn = 0;
    Workspace* ws = nullptr;
    Status status;
    uint64_t batch_id = 0;
    uint32_t batch_size = 0;
    bool done = false;
  };

  Workspace* FindWorkspace(TxnId txn);

  /// Lock-free writability gate (atomics only).
  Status CheckWritable() const;

  /// The group-commit pipeline: park in the queue, become leader or get
  /// carried by one, one fsync per batch, pages applied in WAL order.
  Status CommitThroughQueue(TxnId txn, Workspace* ws);
  /// Dumps the tracer's span ring to `path_ + ".flight.json"` (plain
  /// stdio, works while wedged). No-op without a bound tracer.
  void DumpFlightRecorder(const std::string& reason);
  /// Appends every batch member's kBegin..kCommit frame and issues the
  /// single group fsync. Caller holds commit_mu_.
  Status AppendBatchWal(const std::vector<CommitRequest*>& batch);
  /// Waits (commit_mu_ held) until every numbered batch has applied its
  /// pages, so the caller can take state_mu_ knowing the pipeline is idle.
  void DrainCommitPipelineLocked();

  // --- committed-state operations (state_mu_ exclusive held, except
  // ReadCommitted which shared-mode readers call under pool_mu_) ---
  Status ReadCommitted(Oid oid, std::vector<char>* out);
  Status ApplyWorkspacePages(Workspace& ws);
  Status ApplyUpsert(Oid oid, Slice image);
  Status ApplyFree(Oid oid);
  Status ApplyRoots();
  Status InsertRecord(Oid oid, Slice image);
  Status FreeOverflowChain(uint32_t first_page);
  Status WriteOverflowChain(Slice image, uint32_t* first_page);
  Status ReadOverflowChain(uint32_t first_page, uint64_t total_len,
                           std::vector<char>* out);
  uint32_t AllocPage();
  void ReleasePage(uint32_t page_id);
  Status ReadPage(uint32_t page_id, char* buf);
  Status WritePage(uint32_t page_id, const char* buf);
  Status ScanAndRebuild();
  Status ReplayWal();
  Status WriteHeader();
  Status CheckpointLocked();
  /// What a lookup miss means: kNotFound normally, kCorruption for a
  /// known-lost oid or while the store is degraded (the lost-object list
  /// is best-effort, so any miss is suspect). Caller holds state_mu_.
  Status AbsentOidStatus(Oid oid) const;
  /// Post-replay: releases quarantined pages whose every enumerated
  /// object was resolved (repaired by WAL redo or explicitly freed).
  void ReconcileQuarantineLocked();
  /// Reformats a corrupt page as empty and returns it to the free list
  /// (dropping any stale pool frame / space-map entry first).
  void ReformatCorruptPage(uint32_t page_id);

  std::string path_;
  Options options_;
  Env* env_ = nullptr;

  // --- lock hierarchy (always acquired in this order) ---
  //   commit_mu_ > wal_mu_ > apply_mu_ > state_mu_ > pool_mu_;
  //   ws_mu_ is a leaf.
  //
  // commit_mu_ guards the commit queue and batch numbering: the first
  // queued committer becomes the leader, claims everything waiting (up
  // to commit_batch_max_txns) as one numbered batch, and releases the
  // lock — so new committers enqueue freely while the batch is fsyncing
  // and form the next batch. wal_mu_/wal_seq_ hand out WAL tickets:
  // batches append + fsync strictly in batch order, so the durable log
  // is a clean sequence of kBegin..kCommit frames and a wedge set by a
  // failed batch is observed before any later batch touches the log.
  // apply_mu_/applied_seq_ hand out apply tickets so batches reach pages
  // in WAL order even though the next batch's fsync is already in
  // flight. state_mu_ guards committed state (index_, space_map_,
  // free_pages_, roots_, page_count_, the buffer pool): batch
  // application and checkpoint/open/close take it exclusive; the read
  // fast lane (Read/GetRoot/Exists/stats) takes it shared and never
  // waits behind an fsync. pool_mu_ serializes buffer-pool LRU mutation
  // among shared-mode readers (an exclusive state_mu_ holder owns the
  // pool outright). ws_mu_ guards the workspaces_ map shape; a Workspace
  // body is only touched by its owning transaction's thread — or by a
  // commit leader while that owner is parked in the queue.
  mutable std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  std::deque<CommitRequest*> commit_queue_;  // under commit_mu_
  uint64_t next_batch_seq_ = 1;              // under commit_mu_

  std::mutex wal_mu_;
  std::condition_variable wal_cv_;
  uint64_t wal_seq_ = 0;  // under wal_mu_: last batch through the WAL

  mutable std::mutex apply_mu_;
  std::condition_variable apply_cv_;
  uint64_t applied_seq_ = 0;  // under apply_mu_

  mutable std::shared_mutex state_mu_;
  mutable std::mutex pool_mu_;
  mutable std::mutex ws_mu_;

  std::unique_ptr<RandomRWFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Wal> wal_;
  std::atomic<bool> open_{false};
  std::atomic<bool> wedged_{false};
  std::atomic<bool> salvage_{false};
  std::unordered_map<uint64_t, Loc> index_;
  std::map<uint32_t, size_t> space_map_;  // slotted page -> free bytes
  std::vector<uint32_t> free_pages_;
  std::map<std::string, Oid> roots_;
  // --- silent-corruption quarantine (under state_mu_) ---
  // Pages whose checksum/structure failed and which WAL redo could not
  // repair. Never allocated from, never read through the pool.
  std::unordered_set<uint32_t> quarantined_pages_;
  // Objects whose committed image lived on a quarantined page
  // (best-effort enumeration; see AbsentOidStatus).
  std::unordered_set<uint64_t> lost_oids_;
  // Quarantined page -> the oids enumerated from it, kept so a later
  // repair of all of them lets ReconcileQuarantineLocked free the page.
  // Pages too mangled to enumerate have no entry (and set
  // unknown_losses_ instead).
  std::unordered_map<uint32_t, std::vector<uint64_t>> quarantine_oids_;
  // A quarantined page could not be parsed at all, so lost_oids_ may be
  // incomplete. Sticky until a clean reopen.
  bool unknown_losses_ = false;
  // The roots directory object (oid 1) was lost: name lookups that miss
  // return kCorruption, since the mapping may simply be unreadable.
  bool roots_lost_ = false;
  std::unordered_map<TxnId, Workspace> workspaces_;  // under ws_mu_
  // oid 1 is reserved for the roots directory. Atomic so Allocate can
  // mint oids without touching any state lock.
  std::atomic<uint64_t> next_oid_{2};
  uint32_t page_count_ = 1;  // page 0 is the file header

  /// Retry policy shared by the WAL and buffer pool. BindMetrics updates
  /// its counter pointers in place, so the Wal/BufferPool (which hold a
  /// pointer to this struct) pick up a registry rebind without reopening.
  IoRetryPolicy retry_policy_;

  // Metrics (see StorageManager::BindMetrics).
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  Counter* object_reads_ = nullptr;
  Counter* object_writes_ = nullptr;
  Counter* wal_records_ = nullptr;
  Counter* commit_fsyncs_ = nullptr;
  Counter* commit_fsyncs_saved_ = nullptr;
  Counter* scrub_pages_ = nullptr;
  Counter* scrub_repaired_ = nullptr;
  Counter* scrub_lost_ = nullptr;
  Gauge* salvage_gauge_ = nullptr;
  Gauge* quarantined_gauge_ = nullptr;
  Histogram* read_latency_ = nullptr;
  Histogram* write_latency_ = nullptr;
  Histogram* wal_append_latency_ = nullptr;
  Histogram* wal_fsync_latency_ = nullptr;
  Histogram* batch_size_hist_ = nullptr;
  Histogram* leader_wait_latency_ = nullptr;
  Tracer* tracer_ = nullptr;  // see BindTracer
};

}  // namespace ode

#endif  // ODE_STORAGE_DISK_STORAGE_MANAGER_H_
