#ifndef ODE_STORAGE_DISK_STORAGE_MANAGER_H_
#define ODE_STORAGE_DISK_STORAGE_MANAGER_H_

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "storage/page.h"
#include "storage/storage_manager.h"
#include "storage/wal.h"

namespace ode {

/// Buffer pool over the data file: a fixed number of page frames with LRU
/// replacement. Dirty frames are written back on eviction, FlushAll, or
/// checkpoint. Not thread-safe by itself; the storage manager serializes
/// access.
class BufferPool {
 public:
  BufferPool(int fd, size_t capacity);

  /// Returns the frame for `page_id`, reading it from disk on a miss.
  Status Get(uint32_t page_id, Page** out);

  /// Like Get but formats a fresh page instead of reading disk.
  Status Create(uint32_t page_id, Page** out);

  void MarkDirty(uint32_t page_id);

  /// Drops a page from the pool without writing it (used when a page is
  /// freed wholesale).
  void Discard(uint32_t page_id);

  Status FlushAll();

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Frame {
    uint32_t page_id = 0;
    bool dirty = false;
    Page page;
  };

  Status WriteFrame(const Frame& frame);
  Status EvictIfFull();
  // Moves the frame to MRU position and returns it.
  Frame* Touch(uint32_t page_id);

  int fd_;
  size_t capacity_;
  // MRU at front.
  std::list<Frame> frames_;
  std::unordered_map<uint32_t, std::list<Frame>::iterator> index_;
  uint64_t reads_ = 0, writes_ = 0, hits_ = 0, misses_ = 0;
};

/// Disk-based storage manager — the EOS analogue. Objects live in slotted
/// pages (large objects spill into overflow-page chains); an in-memory
/// oid -> (page, slot) index is rebuilt by scanning pages on open; a
/// redo-only WAL plus no-steal transaction workspaces provide atomicity
/// and crash recovery.
class DiskStorageManager final : public StorageManager {
 public:
  struct Options {
    size_t buffer_pool_pages = 256;
    /// Payloads above this many bytes go to overflow chains.
    size_t inline_limit = 2048;
    /// If false, skip the fsync on commit (benchmarks only).
    bool sync_commits = true;
  };

  explicit DiskStorageManager(std::string path)
      : DiskStorageManager(std::move(path), Options()) {}
  DiskStorageManager(std::string path, Options options);
  ~DiskStorageManager() override;

  DiskStorageManager(const DiskStorageManager&) = delete;
  DiskStorageManager& operator=(const DiskStorageManager&) = delete;

  Status Open() override;
  Status Close() override;

  Result<Oid> Allocate(TxnId txn, Slice data) override;
  Status Read(TxnId txn, Oid oid, std::vector<char>* out) override;
  Status Write(TxnId txn, Oid oid, Slice data) override;
  Status Free(TxnId txn, Oid oid) override;
  bool Exists(TxnId txn, Oid oid) override;

  Status SetRoot(TxnId txn, const std::string& name, Oid oid) override;
  Result<Oid> GetRoot(TxnId txn, const std::string& name) override;

  Status BeginTxn(TxnId txn) override;
  Status CommitTxn(TxnId txn) override;
  Status AbortTxn(TxnId txn) override;

  Status Checkpoint() override;

  /// Test hook: tears the manager down WITHOUT flushing dirty pages or
  /// checkpointing, as a process crash would. The next Open() on the same
  /// path must recover committed state from pages + WAL redo alone.
  void SimulateCrash();

  StorageStats stats() const override;

  void BindMetrics(MetricsRegistry* registry) override;

 private:
  using Workspace = storage_internal::TxnWorkspace;

  struct Loc {
    uint32_t page = 0;
    uint16_t slot = 0;
  };

  Workspace* FindWorkspace(TxnId txn);

  // --- committed-state operations (mu_ held) ---
  Status ReadCommitted(Oid oid, std::vector<char>* out);
  Status ApplyUpsert(Oid oid, Slice image);
  Status ApplyFree(Oid oid);
  Status ApplyRoots();
  Status InsertRecord(Oid oid, Slice image);
  Status FreeOverflowChain(uint32_t first_page);
  Status WriteOverflowChain(Slice image, uint32_t* first_page);
  Status ReadOverflowChain(uint32_t first_page, uint64_t total_len,
                           std::vector<char>* out);
  uint32_t AllocPage();
  void ReleasePage(uint32_t page_id);
  Status ScanAndRebuild();
  Status ReplayWal();
  Status WriteHeader();
  Status CheckpointLocked();

  std::string path_;
  Options options_;
  int fd_ = -1;
  bool open_ = false;

  mutable std::mutex mu_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Wal> wal_;
  std::unordered_map<uint64_t, Loc> index_;
  std::map<uint32_t, size_t> space_map_;  // slotted page -> free bytes
  std::vector<uint32_t> free_pages_;
  std::map<std::string, Oid> roots_;
  std::unordered_map<TxnId, Workspace> workspaces_;
  uint64_t next_oid_ = 2;  // oid 1 is reserved for the roots directory
  uint32_t page_count_ = 1;  // page 0 is the file header

  // Metrics (see StorageManager::BindMetrics).
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  Counter* object_reads_ = nullptr;
  Counter* object_writes_ = nullptr;
  Counter* wal_records_ = nullptr;
  Histogram* read_latency_ = nullptr;
  Histogram* write_latency_ = nullptr;
  Histogram* wal_append_latency_ = nullptr;
};

}  // namespace ode

#endif  // ODE_STORAGE_DISK_STORAGE_MANAGER_H_
