#ifndef ODE_STORAGE_STORAGE_MANAGER_H_
#define ODE_STORAGE_STORAGE_MANAGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "objstore/oid.h"

namespace ode {

class MetricsRegistry;
class Tracer;

/// Aggregate counters a storage manager exposes for benchmarks and tests.
struct StorageStats {
  uint64_t objects = 0;
  uint64_t bytes = 0;
  uint64_t pages = 0;
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t wal_records = 0;
  uint64_t buffer_hits = 0;
  uint64_t buffer_misses = 0;
  /// Object-granularity Read()/Write() call counts, independent of the
  /// page/buffer machinery. Benchmark E1 uses these to count storage
  /// round-trips per event posting.
  uint64_t object_reads = 0;
  uint64_t object_writes = 0;
};

/// Result of an integrity sweep (see StorageManager::VerifyIntegrity).
struct ScrubReport {
  uint64_t pages_scanned = 0;
  /// Pages whose checksum or structure failed verification this sweep.
  uint64_t bad_pages = 0;
  /// Bad pages rebuilt from WAL redo — their objects are fine.
  uint64_t repaired_pages = 0;
  /// Bad pages the log no longer covers, now quarantined (cumulative:
  /// includes pages quarantined by an earlier degraded open).
  uint64_t quarantined_pages = 0;
  /// Objects known lost to quarantined pages (enumerated best-effort).
  std::vector<Oid> lost_oids;
  /// True when a quarantined page was too mangled to enumerate its
  /// objects, so lost_oids may be incomplete. Readers treat every
  /// lookup miss as suspect (kCorruption) while this is set.
  bool unknown_losses = false;

  bool clean() const {
    return bad_pages == 0 && quarantined_pages == 0 && lost_oids.empty() &&
           !unknown_losses;
  }
};

/// Abstract storage manager — the layer EOS (disk) and Dali (main-memory)
/// provide under the Ode object manager. Both implementations here follow a
/// no-steal/redo-log discipline: a transaction's writes accumulate in a
/// private workspace overlay and are applied to the base store only at
/// commit, so abort is "drop the workspace" and trigger-state rollback
/// (paper §5.5) falls out for free.
///
/// Thread-safety: calls for distinct transactions may run concurrently;
/// isolation between transactions is the lock manager's job (strict 2PL at
/// the object-manager layer), not the storage manager's.
class StorageManager {
 public:
  virtual ~StorageManager() = default;

  /// Opens (creating if necessary) the store. Runs recovery if the
  /// implementation is durable.
  virtual Status Open() = 0;

  /// Flushes and closes. Open() afterwards must see all committed state.
  virtual Status Close() = 0;

  /// Allocates a fresh Oid and stores `data` under it, in txn's workspace.
  virtual Result<Oid> Allocate(TxnId txn, Slice data) = 0;

  /// Reads the object image as seen by `txn` (its own workspace first,
  /// then the committed base).
  virtual Status Read(TxnId txn, Oid oid, std::vector<char>* out) = 0;

  /// Replaces the object image in txn's workspace.
  virtual Status Write(TxnId txn, Oid oid, Slice data) = 0;

  /// Deletes the object (the paper's pdelete) in txn's workspace.
  virtual Status Free(TxnId txn, Oid oid) = 0;

  /// True if the object exists as seen by `txn`.
  virtual bool Exists(TxnId txn, Oid oid) = 0;

  /// Named persistent roots — the bootstrap directory used for catalogs
  /// and the trigger index (name -> Oid).
  virtual Status SetRoot(TxnId txn, const std::string& name, Oid oid) = 0;
  virtual Result<Oid> GetRoot(TxnId txn, const std::string& name) = 0;

  /// Transaction lifecycle (driven by the TransactionManager).
  virtual Status BeginTxn(TxnId txn) = 0;
  virtual Status CommitTxn(TxnId txn) = 0;
  virtual Status AbortTxn(TxnId txn) = 0;

  /// Forces all committed state to the durable medium (no-op for a purely
  /// volatile store).
  virtual Status Checkpoint() = 0;

  virtual StorageStats stats() const = 0;

  /// Identity of the group-commit batch that carried a transaction's
  /// commit record to the durable medium (see docs/storage.md, "Group
  /// commit"). batch_id 0 means the store does not batch commits (or the
  /// commit was read-only and never reached the log).
  struct CommitBatchInfo {
    uint64_t batch_id = 0;
    uint32_t batch_size = 0;
    bool leader = false;
  };

  /// Batch info for the most recent successful CommitTxn *on the calling
  /// thread* (thread-local; stable until that thread's next commit). The
  /// trigger runtime reads this from its post-commit hook — which runs on
  /// the committing thread — to stamp trace events with batch ids.
  virtual CommitBatchInfo LastCommitBatch() const { return {}; }

  /// Sweeps the durable medium for silent corruption: verifies every
  /// page's checksum and structure, repairs what WAL redo still covers,
  /// and quarantines the rest (see docs/storage.md, "Silent corruption").
  /// A clean report means every committed object is readable and intact.
  /// Default: a volatile store has no medium to scrub — always clean.
  virtual Result<ScrubReport> VerifyIntegrity() {
    return ScrubReport{};
  }

  /// Points the manager's counters and latency histograms at `registry`
  /// (the owning Database's, so storage metrics share its reporting
  /// surface). Implementations default to a private registry when
  /// standalone; call before the first Read/Write. Default: no-op for
  /// implementations without metrics.
  virtual void BindMetrics(MetricsRegistry* registry) { (void)registry; }

  /// Points the manager at the owning Database's span tracer so commit
  /// pipeline stages (WAL append, group fsync, page apply) land on the
  /// same per-transaction timelines as the upper layers. Default: no-op
  /// for implementations that record no spans.
  virtual void BindTracer(Tracer* tracer) { (void)tracer; }
};

namespace storage_internal {

/// Per-transaction overlay shared by both storage managers: buffered
/// writes/frees/root updates plus the set of Oids allocated by the txn.
struct TxnWorkspace {
  // oid -> new image; an entry with `freed` set shadows a base object.
  struct Entry {
    std::vector<char> image;
    bool freed = false;
  };
  std::unordered_map<Oid, Entry, OidHash> entries;
  std::map<std::string, Oid> root_updates;
  std::vector<Oid> allocated;
};

}  // namespace storage_internal
}  // namespace ode

#endif  // ODE_STORAGE_STORAGE_MANAGER_H_
