#ifndef ODE_EVENTS_MINIMIZE_H_
#define ODE_EVENTS_MINIMIZE_H_

#include "events/dfa.h"

namespace ode {

/// Moore partition refinement extended for mask states: the refinement
/// signature of a state includes its accept flag, mask id, the classes of
/// its True/False successors, and the class of each consuming transition
/// (missing transition = the implicit dead class). The result is
/// renumbered by breadth-first order from the start state (True before
/// False before ascending symbols), which makes state numbering
/// deterministic — the AutoRaiseLimit machine comes out numbered exactly
/// as in the paper's Figure 1.
Dfa MinimizeDfa(const Dfa& dfa);

}  // namespace ode

#endif  // ODE_EVENTS_MINIMIZE_H_
