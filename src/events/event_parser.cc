#include "events/event_parser.h"

#include <cctype>

namespace ode {

namespace {

/// Recursive-descent parser over the raw text. Whitespace-insensitive
/// except inside raw `(...)` masks, whose text is kept verbatim (modulo
/// trimming) as the mask key.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<ParsedEvent> Parse() {
    ParsedEvent out;
    SkipSpace();
    if (Peek() == '^') {
      ++pos_;
      out.anchored = true;
    }
    auto expr = ParseSeq();
    if (!expr.ok()) return expr.status();
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("unexpected trailing input");
    }
    out.expr = std::move(expr).value();
    return out;
  }

 private:
  Status Fail(const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(pos_) +
                              " in \"" + text_ + "\"");
  }

  char Peek() { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char PeekAt(size_t ahead) {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string PeekIdent() {
    SkipSpace();
    size_t p = pos_;
    if (p >= text_.size()) return "";
    char c = text_[p];
    if (!std::isalpha(static_cast<unsigned char>(c)) && c != '_') return "";
    size_t start = p;
    while (p < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[p])) ||
            text_[p] == '_')) {
      ++p;
    }
    return text_.substr(start, p - start);
  }

  std::string TakeIdent() {
    std::string id = PeekIdent();
    SkipSpace();
    pos_ += id.size();
    return id;
  }

  Result<ExprPtr> ParseSeq() {
    auto left = ParseAlt();
    if (!left.ok()) return left;
    ExprPtr expr = std::move(left).value();
    while (ConsumeChar(',')) {
      auto right = ParseAlt();
      if (!right.ok()) return right;
      expr = Seq(std::move(expr), std::move(right).value());
    }
    return expr;
  }

  Result<ExprPtr> ParseAlt() {
    auto left = ParseMasked();
    if (!left.ok()) return left;
    ExprPtr expr = std::move(left).value();
    while (true) {
      SkipSpace();
      if (Peek() == '|' && PeekAt(1) == '|') {
        pos_ += 2;
        auto right = ParseMasked();
        if (!right.ok()) return right;
        expr = Or(std::move(expr), std::move(right).value());
      } else {
        break;
      }
    }
    return expr;
  }

  Result<ExprPtr> ParseMasked() {
    auto left = ParsePostfix();
    if (!left.ok()) return left;
    ExprPtr expr = std::move(left).value();
    while (ConsumeChar('&')) {
      auto key = ParseMaskKey();
      if (!key.ok()) return key.status();
      expr = Mask(std::move(expr), std::move(key).value());
    }
    return expr;
  }

  Result<std::string> ParseMaskKey() {
    SkipSpace();
    if (Peek() == '(') {
      // Raw predicate text; keep everything to the matching ')'.
      ++pos_;
      size_t depth = 1;
      size_t start = pos_;
      while (pos_ < text_.size() && depth > 0) {
        if (text_[pos_] == '(') ++depth;
        if (text_[pos_] == ')') --depth;
        ++pos_;
      }
      if (depth != 0) return Fail("unbalanced parentheses in mask");
      std::string raw = text_.substr(start, pos_ - 1 - start);
      // Trim outer whitespace; interior is significant.
      size_t b = raw.find_first_not_of(" \t");
      size_t e = raw.find_last_not_of(" \t");
      if (b == std::string::npos) return Fail("empty mask predicate");
      return "(" + raw.substr(b, e - b + 1) + ")";
    }
    std::string id = TakeIdent();
    if (id.empty()) return Fail("expected mask predicate");
    SkipSpace();
    if (Peek() == '(') {
      ++pos_;
      SkipSpace();
      if (Peek() != ')') return Fail("mask call must have no arguments");
      ++pos_;
    }
    return id + "()";
  }

  Result<ExprPtr> ParsePostfix() {
    auto prim = ParsePrimary();
    if (!prim.ok()) return prim;
    ExprPtr expr = std::move(prim).value();
    while (true) {
      SkipSpace();
      char c = Peek();
      if (c == '*') {
        ++pos_;
        expr = Star(std::move(expr));
      } else if (c == '+') {
        ++pos_;
        expr = Plus(std::move(expr));
      } else if (c == '?') {
        ++pos_;
        expr = Opt(std::move(expr));
      } else if (c == '{') {
        auto bounded = ParseBoundedRepetition(std::move(expr));
        if (!bounded.ok()) return bounded;
        expr = std::move(bounded).value();
      } else {
        break;
      }
    }
    return expr;
  }

  /// e{n} — exactly n occurrences; e{m,n} — between m and n. Desugared
  /// into sequence/optional chains, so downstream machinery (and
  /// ToString) sees only core operators.
  Result<ExprPtr> ParseBoundedRepetition(ExprPtr operand) {
    ++pos_;  // consume '{'
    auto lo = ParseNumber();
    if (!lo.ok()) return lo.status();
    uint64_t m = lo.value(), n = lo.value();
    SkipSpace();
    if (Peek() == ',') {
      ++pos_;
      auto hi = ParseNumber();
      if (!hi.ok()) return hi.status();
      n = hi.value();
    }
    if (!ConsumeChar('}')) return Fail("expected '}' after repetition");
    if (n == 0) return Fail("repetition bound must be positive");
    if (m > n) return Fail("repetition lower bound exceeds upper bound");
    if (n > 64) return Fail("repetition bound too large (max 64)");

    ExprPtr result;
    for (uint64_t i = 0; i < m; ++i) {
      result = result == nullptr ? operand : Seq(result, operand);
    }
    for (uint64_t i = m; i < n; ++i) {
      ExprPtr optional = Opt(operand);
      result = result == nullptr ? optional : Seq(result, optional);
    }
    return result;
  }

  Result<uint64_t> ParseNumber() {
    SkipSpace();
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("expected number");
    }
    uint64_t value = 0;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      value = value * 10 + static_cast<uint64_t>(Peek() - '0');
      if (value > 1000000) return Fail("number too large");
      ++pos_;
    }
    return value;
  }

  Result<ExprPtr> ParsePrimary() {
    SkipSpace();
    if (ConsumeChar('(')) {
      auto inner = ParseSeq();
      if (!inner.ok()) return inner;
      if (!ConsumeChar(')')) return Fail("expected ')'");
      return inner;
    }
    std::string id = PeekIdent();
    if (id.empty()) return Fail("expected event");
    if (id == "any") {
      TakeIdent();
      return Any();
    }
    if (id == "relative") {
      TakeIdent();
      if (!ConsumeChar('(')) return Fail("expected '(' after relative");
      // ',' doubles as the sequence operator, so the first argument stops
      // at alternation level — parenthesize it to pass a sequence, as the
      // paper's own example does.
      auto a = ParseAlt();
      if (!a.ok()) return a;
      if (!ConsumeChar(',')) return Fail("expected ',' in relative");
      auto b = ParseSeq();
      if (!b.ok()) return b;
      if (!ConsumeChar(')')) return Fail("expected ')' after relative");
      return Relative(std::move(a).value(), std::move(b).value());
    }
    if (id == "before" || id == "after") {
      TakeIdent();
      std::string fn = TakeIdent();
      if (fn.empty()) return Fail("expected function name after " + id);
      return Basic(id + " " + fn);
    }
    TakeIdent();
    return Basic(id);  // user-defined event
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedEvent> ParseEventExpr(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace ode
