#ifndef ODE_EVENTS_DFA_H_
#define ODE_EVENTS_DFA_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "events/nfa.h"

namespace ode {

/// Deterministic automaton with mask states (paper §5.1.2). A state with
/// `mask >= 0` evaluates that predicate immediately upon entry and moves
/// to `true_next` / `false_next` on the True/False pseudo-events; mask
/// states have no consuming transitions ("it must evaluate the mask to
/// produce pseudo-events rather than wait for external events").
///
/// Consuming transitions are stored sparsely; a symbol with no entry is
/// dead (possible only for anchored expressions — the `(any*,)` prefix
/// makes unanchored machines total over their alphabet).
struct Dfa {
  struct State {
    bool accept = false;
    int32_t mask = -1;
    int32_t true_next = -1;
    int32_t false_next = -1;
    std::vector<std::pair<Symbol, int32_t>> transitions;  // sorted
  };

  std::vector<State> states;
  int32_t start = 0;
};

/// Subset construction extended for mask nodes. Two refinements keep the
/// result in the shape the paper draws (Figure 1):
///
///  1. A set's lowest-id mask is resolved at construction time into
///     True/False successor sets: True keeps the rest of the set and adds
///     the closure of the mask node's True targets; False just drops the
///     mask nodes (the `(any*,)` search states already in the set provide
///     the "back to searching" behaviour).
///  2. If both outcomes yield the same set the mask is irrelevant in that
///     context and the state collapses into the successor, which prunes
///     the re-evaluation superposition states a naive construction
///     produces after a mask has already been passed.
Result<Dfa> BuildDfa(const Nfa& nfa);

}  // namespace ode

#endif  // ODE_EVENTS_DFA_H_
