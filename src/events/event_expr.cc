#include "events/event_expr.h"

#include <unordered_set>

#include "common/logging.h"

namespace ode {

namespace {
ExprPtr Make(EventExpr::Kind kind, ExprPtr left = nullptr,
             ExprPtr right = nullptr) {
  auto e = std::make_shared<EventExpr>();
  e->kind = kind;
  e->left = std::move(left);
  e->right = std::move(right);
  return e;
}
}  // namespace

ExprPtr Basic(std::string event_name) {
  auto e = std::make_shared<EventExpr>();
  e->kind = EventExpr::Kind::kBasic;
  e->event_name = std::move(event_name);
  return e;
}

ExprPtr Any() { return Make(EventExpr::Kind::kAny); }

ExprPtr Seq(ExprPtr a, ExprPtr b) {
  ODE_CHECK(a && b);
  return Make(EventExpr::Kind::kSeq, std::move(a), std::move(b));
}

ExprPtr Or(ExprPtr a, ExprPtr b) {
  ODE_CHECK(a && b);
  return Make(EventExpr::Kind::kOr, std::move(a), std::move(b));
}

ExprPtr Star(ExprPtr e) {
  ODE_CHECK(e != nullptr);
  return Make(EventExpr::Kind::kStar, std::move(e));
}

ExprPtr Plus(ExprPtr e) {
  ODE_CHECK(e != nullptr);
  return Make(EventExpr::Kind::kPlus, std::move(e));
}

ExprPtr Opt(ExprPtr e) {
  ODE_CHECK(e != nullptr);
  return Make(EventExpr::Kind::kOpt, std::move(e));
}

ExprPtr Mask(ExprPtr e, std::string mask_name) {
  ODE_CHECK(e != nullptr);
  auto m = std::make_shared<EventExpr>();
  m->kind = EventExpr::Kind::kMask;
  m->mask_name = std::move(mask_name);
  m->left = std::move(e);
  return m;
}

ExprPtr Relative(ExprPtr a, ExprPtr b) {
  ODE_CHECK(a && b);
  return Make(EventExpr::Kind::kRelative, std::move(a), std::move(b));
}

namespace {

// Precedence used for parenthesization: ',' (1) < '||' (2) < '&' (3) <
// postfix (4) < primary (5).
int Precedence(EventExpr::Kind kind) {
  switch (kind) {
    case EventExpr::Kind::kSeq:
      return 1;
    case EventExpr::Kind::kOr:
      return 2;
    case EventExpr::Kind::kMask:
      return 3;
    case EventExpr::Kind::kStar:
    case EventExpr::Kind::kPlus:
    case EventExpr::Kind::kOpt:
      return 4;
    default:
      return 5;
  }
}

void Render(const ExprPtr& e, int parent_prec, std::string* out) {
  int prec = Precedence(e->kind);
  bool parens = prec < parent_prec;
  if (parens) out->push_back('(');
  switch (e->kind) {
    case EventExpr::Kind::kBasic:
      *out += e->event_name;
      break;
    case EventExpr::Kind::kAny:
      *out += "any";
      break;
    case EventExpr::Kind::kSeq:
      Render(e->left, prec, out);
      *out += ", ";
      Render(e->right, prec + 1, out);
      break;
    case EventExpr::Kind::kOr:
      Render(e->left, prec, out);
      *out += " || ";
      Render(e->right, prec + 1, out);
      break;
    case EventExpr::Kind::kMask:
      Render(e->left, prec, out);
      *out += " & ";
      *out += e->mask_name;
      break;
    case EventExpr::Kind::kStar:
      Render(e->left, prec + 1, out);
      *out += "*";
      break;
    case EventExpr::Kind::kPlus:
      Render(e->left, prec + 1, out);
      *out += "+";
      break;
    case EventExpr::Kind::kOpt:
      Render(e->left, prec + 1, out);
      *out += "?";
      break;
    case EventExpr::Kind::kRelative:
      *out += "relative(";
      Render(e->left, 0, out);
      *out += ", ";
      Render(e->right, 0, out);
      *out += ")";
      break;
  }
  if (parens) out->push_back(')');
}

void CollectEvents(const ExprPtr& e, std::unordered_set<std::string>* seen,
                   std::vector<std::string>* out) {
  if (e == nullptr) return;
  if (e->kind == EventExpr::Kind::kBasic) {
    if (seen->insert(e->event_name).second) out->push_back(e->event_name);
  }
  CollectEvents(e->left, seen, out);
  CollectEvents(e->right, seen, out);
}

void CollectMasks(const ExprPtr& e, std::unordered_set<std::string>* seen,
                  std::vector<std::string>* out) {
  if (e == nullptr) return;
  if (e->kind == EventExpr::Kind::kMask) {
    if (seen->insert(e->mask_name).second) out->push_back(e->mask_name);
  }
  CollectMasks(e->left, seen, out);
  CollectMasks(e->right, seen, out);
}

}  // namespace

std::string ToString(const ExprPtr& e) {
  std::string out;
  Render(e, 0, &out);
  return out;
}

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind || a->event_name != b->event_name ||
      a->mask_name != b->mask_name) {
    return false;
  }
  return ExprEquals(a->left, b->left) && ExprEquals(a->right, b->right);
}

std::vector<std::string> ReferencedEvents(const ExprPtr& e) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  CollectEvents(e, &seen, &out);
  return out;
}

std::vector<std::string> ReferencedMasks(const ExprPtr& e) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  CollectMasks(e, &seen, &out);
  return out;
}

bool Nullable(const ExprPtr& e) {
  switch (e->kind) {
    case EventExpr::Kind::kBasic:
    case EventExpr::Kind::kAny:
      return false;
    case EventExpr::Kind::kSeq:
      return Nullable(e->left) && Nullable(e->right);
    case EventExpr::Kind::kOr:
      return Nullable(e->left) || Nullable(e->right);
    case EventExpr::Kind::kStar:
    case EventExpr::Kind::kOpt:
      return true;
    case EventExpr::Kind::kPlus:
      return Nullable(e->left);
    case EventExpr::Kind::kMask:
      return Nullable(e->left);
    case EventExpr::Kind::kRelative:
      return Nullable(e->left) && Nullable(e->right);
  }
  return false;
}

}  // namespace ode
