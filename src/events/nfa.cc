#include "events/nfa.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace ode {

namespace {

/// Fragment of an under-construction NFA: entry state and exit state.
struct Frag {
  int start;
  int end;
};

class Builder {
 public:
  explicit Builder(const CompileInput& input) : input_(input) {}

  Result<Nfa> Build() {
    auto frag = BuildExpr(input_.expr);
    if (!frag.ok()) return frag.status();
    Frag body = frag.value();

    int start;
    if (input_.anchored) {
      start = body.start;
    } else {
      // Prepend (any*,): a start state that loops on every alphabet
      // symbol and epsilon-enters the body (paper §5.1.1).
      start = NewState();
      for (Symbol s : input_.alphabet) {
        nfa_.states[start].edges.emplace_back(s, start);
      }
      nfa_.states[start].eps.push_back(body.start);
    }
    nfa_.start = start;
    nfa_.accept = body.end;
    return std::move(nfa_);
  }

 private:
  int NewState() {
    nfa_.states.emplace_back();
    return static_cast<int>(nfa_.states.size()) - 1;
  }

  Result<Frag> BuildExpr(const ExprPtr& e) {
    switch (e->kind) {
      case EventExpr::Kind::kBasic: {
        auto it = input_.event_symbols.find(e->event_name);
        if (it == input_.event_symbols.end()) {
          return Status::InvalidArgument("undeclared event '" +
                                         e->event_name + "'");
        }
        int a = NewState(), b = NewState();
        nfa_.states[a].edges.emplace_back(it->second, b);
        return Frag{a, b};
      }
      case EventExpr::Kind::kAny: {
        int a = NewState(), b = NewState();
        for (Symbol s : input_.alphabet) {
          nfa_.states[a].edges.emplace_back(s, b);
        }
        return Frag{a, b};
      }
      case EventExpr::Kind::kSeq: {
        auto l = BuildExpr(e->left);
        if (!l.ok()) return l;
        auto r = BuildExpr(e->right);
        if (!r.ok()) return r;
        nfa_.states[l.value().end].eps.push_back(r.value().start);
        return Frag{l.value().start, r.value().end};
      }
      case EventExpr::Kind::kOr: {
        auto l = BuildExpr(e->left);
        if (!l.ok()) return l;
        auto r = BuildExpr(e->right);
        if (!r.ok()) return r;
        int a = NewState(), b = NewState();
        nfa_.states[a].eps.push_back(l.value().start);
        nfa_.states[a].eps.push_back(r.value().start);
        nfa_.states[l.value().end].eps.push_back(b);
        nfa_.states[r.value().end].eps.push_back(b);
        return Frag{a, b};
      }
      case EventExpr::Kind::kStar: {
        auto inner = BuildExpr(e->left);
        if (!inner.ok()) return inner;
        int a = NewState(), b = NewState();
        nfa_.states[a].eps.push_back(inner.value().start);
        nfa_.states[a].eps.push_back(b);
        nfa_.states[inner.value().end].eps.push_back(inner.value().start);
        nfa_.states[inner.value().end].eps.push_back(b);
        return Frag{a, b};
      }
      case EventExpr::Kind::kPlus: {
        auto inner = BuildExpr(e->left);
        if (!inner.ok()) return inner;
        int b = NewState();
        nfa_.states[inner.value().end].eps.push_back(inner.value().start);
        nfa_.states[inner.value().end].eps.push_back(b);
        return Frag{inner.value().start, b};
      }
      case EventExpr::Kind::kOpt: {
        auto inner = BuildExpr(e->left);
        if (!inner.ok()) return inner;
        int a = NewState(), b = NewState();
        nfa_.states[a].eps.push_back(inner.value().start);
        nfa_.states[a].eps.push_back(b);
        nfa_.states[inner.value().end].eps.push_back(b);
        return Frag{a, b};
      }
      case EventExpr::Kind::kMask: {
        if (Nullable(e->left)) {
          return Status::InvalidArgument(
              "masked operand '" + ToString(e->left) +
              "' can match the empty sequence; the mask would be "
              "evaluated before any event occurred");
        }
        auto inner = BuildExpr(e->left);
        if (!inner.ok()) return inner;
        auto it = input_.mask_ids.find(e->mask_name);
        if (it == input_.mask_ids.end()) {
          return Status::InvalidArgument("unregistered mask '" +
                                         e->mask_name + "'");
        }
        int m = NewState(), b = NewState();
        nfa_.states[inner.value().end].eps.push_back(m);
        nfa_.states[m].mask = it->second;
        nfa_.states[m].mask_true = b;
        return Frag{inner.value().start, b};
      }
      case EventExpr::Kind::kRelative: {
        // relative(A, B) == A, any*, B — matches Figure 1.
        return BuildExpr(
            Seq(e->left, Seq(Star(Any()), e->right)));
      }
    }
    return Status::Internal("unknown expression kind");
  }

  const CompileInput& input_;
  Nfa nfa_;
};

void Closure(const Nfa& nfa, std::set<int>* states) {
  std::vector<int> stack(states->begin(), states->end());
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (int t : nfa.states[s].eps) {
      if (states->insert(t).second) stack.push_back(t);
    }
  }
}

}  // namespace

Result<Nfa> BuildNfa(const CompileInput& input) {
  return Builder(input).Build();
}

std::vector<bool> SimulateNfa(
    const Nfa& nfa, const std::vector<Symbol>& stream,
    const std::vector<std::vector<bool>>& mask_values) {
  ODE_CHECK(mask_values.size() >= stream.size());
  std::set<int> current{nfa.start};
  Closure(nfa, &current);

  auto resolve_masks = [&](std::set<int>* states, size_t pos) {
    // Fixpoint: expand every unexpanded mask node, then drop them all.
    std::set<std::pair<int, int>> expanded;  // (state, mask)
    while (true) {
      std::vector<int> mask_nodes;
      for (int s : *states) {
        if (nfa.states[s].mask >= 0) mask_nodes.push_back(s);
      }
      if (mask_nodes.empty()) return;
      bool progressed = false;
      for (int s : mask_nodes) {
        int m = nfa.states[s].mask;
        bool value = pos < mask_values.size() &&
                     m < static_cast<int>(mask_values[pos].size()) &&
                     mask_values[pos][m];
        if (value && expanded.insert({s, m}).second) {
          std::set<int> add{nfa.states[s].mask_true};
          Closure(nfa, &add);
          size_t before = states->size();
          states->insert(add.begin(), add.end());
          if (states->size() != before) progressed = true;
        }
        states->erase(s);
      }
      if (!progressed) {
        // Only re-added already-expanded nodes remain possible; erase and
        // re-check — if the set is mask-free we are done, else loop once
        // more (bounded: every (state, mask) pair expands at most once).
        bool any_left = false;
        for (int s : *states) {
          if (nfa.states[s].mask >= 0 &&
              !expanded.count({s, nfa.states[s].mask})) {
            any_left = true;
          }
        }
        if (!any_left) {
          for (auto it = states->begin(); it != states->end();) {
            if (nfa.states[*it].mask >= 0) {
              it = states->erase(it);
            } else {
              ++it;
            }
          }
          return;
        }
      }
    }
  };

  std::vector<bool> accepts;
  accepts.reserve(stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    Symbol sym = stream[i];
    std::set<int> next;
    for (int s : current) {
      for (const auto& [edge_sym, target] : nfa.states[s].edges) {
        if (edge_sym == sym) next.insert(target);
      }
    }
    if (next.empty()) {
      // No state moves on this symbol: the machine is dead. This can only
      // happen for anchored expressions — with the (any*,) prefix the
      // start state's any-loop keeps every reachable set non-empty. The
      // caller is expected to feed only alphabet symbols (out-of-alphabet
      // events are filtered before the automaton in the real runtime).
      current.clear();
      accepts.push_back(false);
      continue;
    }
    Closure(nfa, &next);
    resolve_masks(&next, i);
    current = std::move(next);
    accepts.push_back(current.count(nfa.accept) > 0);
  }
  return accepts;
}

}  // namespace ode
