#ifndef ODE_EVENTS_EVENT_PARSER_H_
#define ODE_EVENTS_EVENT_PARSER_H_

#include <string>

#include "common/result.h"
#include "events/event_expr.h"

namespace ode {

/// A parsed trigger event specification: the expression plus whether it
/// was anchored with `^` (paper §5.1.1 — anchored triggers search from the
/// activation point "with nothing ignored"; unanchored ones get `(any*,)`
/// prepended at FSM-construction time).
struct ParsedEvent {
  ExprPtr expr;
  bool anchored = false;
};

/// Parses the concrete event-language syntax used in O++ class bodies:
///
///   expr    := seq
///   seq     := alt (',' alt)*
///   alt     := masked ('||' masked)*
///   masked  := postfix ('&' mask)*
///   postfix := primary ('*' | '+' | '?')*
///   primary := '(' expr ')' | 'any' | 'relative' '(' expr ',' expr ')'
///            | ('before' | 'after') IDENT | IDENT
///   mask    := IDENT '(' ')'              e.g.  MoreCred()
///            | '(' raw text ')'           e.g.  (currBal > credLim)
///
/// Masks are recorded by their textual key (normalized of outer spaces);
/// the schema layer resolves keys to registered predicate functions.
Result<ParsedEvent> ParseEventExpr(const std::string& text);

}  // namespace ode

#endif  // ODE_EVENTS_EVENT_PARSER_H_
