#include "events/fsm.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.h"
#include "events/minimize.h"

namespace ode {

namespace {
// Mask-state chains are short in practice (one per nested '&'); the bound
// only guards against pathological constructions.
constexpr int kMaxMaskWalk = 1024;
}  // namespace

Fsm::Fsm(const Dfa& dfa, std::vector<Symbol> alphabet)
    : alphabet_(std::move(alphabet)) {
  std::sort(alphabet_.begin(), alphabet_.end());
  states_.reserve(dfa.states.size());
  for (size_t i = 0; i < dfa.states.size(); ++i) {
    const Dfa::State& src = dfa.states[i];
    State s;
    s.statenum = static_cast<int32_t>(i);
    s.accept = src.accept;
    s.mask = src.mask;
    s.true_next = src.true_next;
    s.false_next = src.false_next;
    s.transitions.reserve(src.transitions.size());
    for (const auto& [sym, target] : src.transitions) {
      s.transitions.push_back(Transition{sym, target});
    }
    std::sort(s.transitions.begin(), s.transitions.end(),
              [](const Transition& a, const Transition& b) {
                return a.eventnum < b.eventnum;
              });
    states_.push_back(std::move(s));
  }
}

int32_t Fsm::Move(int32_t state, Symbol symbol) const {
  if (state == kDeadState) return kDeadState;
  ODE_DCHECK(state >= 0 && static_cast<size_t>(state) < states_.size());
  if (!std::binary_search(alphabet_.begin(), alphabet_.end(), symbol)) {
    return state;  // not our alphabet: ignore (paper §5.4.3)
  }
  const State& s = states_[static_cast<size_t>(state)];
  auto it = std::lower_bound(
      s.transitions.begin(), s.transitions.end(), symbol,
      [](const Transition& t, Symbol sym) { return t.eventnum < sym; });
  if (it == s.transitions.end() || it->eventnum != symbol) {
    return kDeadState;  // alphabet symbol with no transition (anchored)
  }
  return it->newstate;
}

Result<int32_t> Fsm::ResolveMasks(int32_t state, const MaskEvaluator& eval,
                                  int* evaluations) const {
  int walked = 0;
  while (state != kDeadState &&
         states_[static_cast<size_t>(state)].mask >= 0) {
    if (++walked > kMaxMaskWalk) {
      return Status::Internal("mask-state walk did not quiesce");
    }
    const State& s = states_[static_cast<size_t>(state)];
    auto value = eval(s.mask);
    if (!value.ok()) return value.status();
    if (evaluations != nullptr) ++*evaluations;
    state = value.value() ? s.true_next : s.false_next;
  }
  return state;
}

size_t Fsm::NumTransitions() const {
  size_t n = 0;
  for (const State& s : states_) n += s.transitions.size();
  return n;
}

size_t Fsm::MemoryBytes() const {
  size_t bytes = sizeof(Fsm) + alphabet_.size() * sizeof(Symbol);
  for (const State& s : states_) {
    bytes += sizeof(State) + s.transitions.size() * sizeof(Transition);
  }
  return bytes;
}

std::string Fsm::ToTable(
    const std::unordered_map<Symbol, std::string>& event_names,
    const std::unordered_map<int32_t, std::string>& mask_names) const {
  auto event_name = [&](Symbol s) {
    auto it = event_names.find(s);
    return it != event_names.end() ? it->second
                                   : "ev" + std::to_string(s);
  };
  std::ostringstream out;
  for (const State& s : states_) {
    out << "state " << s.statenum;
    if (s.statenum == 0) out << " (start)";
    if (s.mask >= 0) out << " *";  // the paper's mask-state marker
    if (s.accept) out << " [accept]";
    out << "\n";
    if (s.mask >= 0) {
      auto it = mask_names.find(s.mask);
      std::string mname = it != mask_names.end()
                              ? it->second
                              : "mask" + std::to_string(s.mask);
      out << "  evaluates " << mname << ": True -> " << s.true_next
          << ", False -> " << s.false_next << "\n";
    }
    for (const Transition& t : s.transitions) {
      out << "  " << event_name(t.eventnum) << " -> " << t.newstate << "\n";
    }
  }
  return out.str();
}

std::string Fsm::ToDot(
    const std::unordered_map<Symbol, std::string>& event_names,
    const std::unordered_map<int32_t, std::string>& mask_names) const {
  auto event_name = [&](Symbol s) {
    auto it = event_names.find(s);
    return it != event_names.end() ? it->second
                                   : "ev" + std::to_string(s);
  };
  std::ostringstream out;
  out << "digraph fsm {\n  rankdir=LR;\n  node [shape=circle];\n";
  for (const State& s : states_) {
    out << "  s" << s.statenum << " [";
    if (s.mask >= 0) {
      auto it = mask_names.find(s.mask);
      std::string mname = it != mask_names.end()
                              ? it->second
                              : "mask" + std::to_string(s.mask);
      out << "shape=diamond, label=\"" << s.statenum << "*\\n" << mname
          << "\"";
    } else {
      out << "label=\"" << s.statenum << "\"";
      if (s.accept) out << ", shape=doublecircle";
    }
    out << "];\n";
    if (s.mask >= 0) {
      out << "  s" << s.statenum << " -> s" << s.true_next
          << " [label=\"True\", style=dashed];\n";
      out << "  s" << s.statenum << " -> s" << s.false_next
          << " [label=\"False\", style=dashed];\n";
    }
    // Group transitions by target so parallel edges share a label.
    std::map<int32_t, std::string> by_target;
    for (const Transition& t : s.transitions) {
      std::string& label = by_target[t.newstate];
      if (!label.empty()) label += " || ";
      label += event_name(t.eventnum);
    }
    for (const auto& [target, label] : by_target) {
      out << "  s" << s.statenum << " -> s" << target << " [label=\""
          << label << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

Result<Fsm> CompileFsm(const CompileInput& input) {
  ODE_ASSIGN_OR_RETURN(Nfa nfa, BuildNfa(input));
  ODE_ASSIGN_OR_RETURN(Dfa dfa, BuildDfa(nfa));
  Dfa minimized = MinimizeDfa(dfa);
  return Fsm(minimized, input.alphabet);
}

}  // namespace ode
