#ifndef ODE_EVENTS_FSM_H_
#define ODE_EVENTS_FSM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "events/dfa.h"
#include "events/nfa.h"

namespace ode {

/// The run-time finite state machine of paper §5.4.3: an array of states,
/// each with a sparse transition list, an accept flag, and (for mask
/// states) the mask to evaluate plus True/False successors. One Fsm is
/// shared by all objects of the class; per-activation state is just the
/// current state number stored in the persistent TriggerState.
class Fsm {
 public:
  /// "when the event represented by eventnum is posted in the state the
  /// transition belongs to, move to the newstate" (§5.4.3).
  struct Transition {
    Symbol eventnum;
    int32_t newstate;
  };

  struct State {
    int32_t statenum = 0;
    bool accept = false;
    int32_t mask = -1;  // NoMask == -1
    int32_t true_next = -1;
    int32_t false_next = -1;
    std::vector<Transition> transitions;  // sorted by eventnum
  };

  /// State number of a dead machine (anchored expression that failed).
  static constexpr int32_t kDeadState = -1;

  /// Evaluates mask `mask_id` in the context of one trigger activation.
  using MaskEvaluator = std::function<Result<bool>(int32_t mask_id)>;

  Fsm() = default;
  Fsm(const Dfa& dfa, std::vector<Symbol> alphabet);

  int32_t start() const { return 0; }
  size_t NumStates() const { return states_.size(); }
  const std::vector<State>& states() const { return states_; }
  const std::vector<Symbol>& alphabet() const { return alphabet_; }

  /// Advances on an external event. Implements the paper's posting rules:
  ///  * an event outside the alphabet is ignored (stay) — this is how
  ///    base-class triggers skip derived-class events (§5.4.3);
  ///  * an alphabet event with no transition kills the machine (possible
  ///    only for anchored expressions);
  ///  * a dead machine stays dead.
  /// The returned state may be a mask state; callers must then run
  /// ResolveMasks before inspecting acceptance.
  int32_t Move(int32_t state, Symbol symbol) const;

  /// Walks mask states, evaluating predicates and following the True /
  /// False pseudo-event successors until a non-mask state is reached
  /// ("multiple mask events must be posted before the system quiesces",
  /// §5.4.5). `evaluations`, if non-null, counts predicate evaluations.
  Result<int32_t> ResolveMasks(int32_t state, const MaskEvaluator& eval,
                               int* evaluations = nullptr) const;

  bool Accepting(int32_t state) const {
    return state >= 0 && states_[static_cast<size_t>(state)].accept;
  }
  bool IsMaskState(int32_t state) const {
    return state >= 0 && states_[static_cast<size_t>(state)].mask >= 0;
  }

  size_t NumTransitions() const;

  /// Approximate resident size of the sparse representation, for the
  /// sparse-vs-dense comparison of §6 (benchmark E3).
  size_t MemoryBytes() const;

  /// Human-readable state table; used to print Figure 1. `event_names`
  /// maps symbols to names, `mask_names` maps mask ids to predicates.
  std::string ToTable(
      const std::unordered_map<Symbol, std::string>& event_names,
      const std::unordered_map<int32_t, std::string>& mask_names) const;

  /// Graphviz dot rendering of the machine (mask states drawn as
  /// diamonds with dashed True/False edges, accept states double-circled
  /// — the conventions of the paper's Figure 1).
  std::string ToDot(
      const std::unordered_map<Symbol, std::string>& event_names,
      const std::unordered_map<int32_t, std::string>& mask_names) const;

 private:
  std::vector<State> states_;
  std::vector<Symbol> alphabet_;  // sorted
};

/// The full compilation pipeline of §5.1: expression -> Thompson NFA ->
/// subset construction with mask resolution -> minimization -> run-time
/// FSM. This is what the O++ compiler's generated code performs once per
/// program start for every trigger (§5.1.3: "we chose to compile an FSM
/// every time").
Result<Fsm> CompileFsm(const CompileInput& input);

}  // namespace ode

#endif  // ODE_EVENTS_FSM_H_
