#ifndef ODE_EVENTS_NFA_H_
#define ODE_EVENTS_NFA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "events/event_expr.h"

namespace ode {

/// Inputs for compiling one trigger's event expression into an automaton.
struct CompileInput {
  ExprPtr expr;
  bool anchored = false;
  /// The FSM alphabet: the declared events of the trigger's class (paper
  /// §5.1 — "the basic events included in the event declaration for a
  /// class constitute the alphabet"). `any` expands to this set.
  std::vector<Symbol> alphabet;
  /// Resolution of event names used in the expression to symbols.
  std::unordered_map<std::string, Symbol> event_symbols;
  /// Resolution of mask keys to dense per-trigger mask ids (0..n-1).
  std::unordered_map<std::string, int32_t> mask_ids;
};

/// Thompson-style NFA extended with *mask nodes*: a mask node carries a
/// mask id and a single True-successor. During subset construction a set
/// containing a mask node becomes a mask state; "False" simply drops the
/// node from the set (the paper's False-transition back toward the search
/// states falls out of the `(any*,)` prefix).
struct Nfa {
  struct State {
    std::vector<std::pair<Symbol, int>> edges;  // consuming transitions
    std::vector<int> eps;                       // epsilon transitions
    int32_t mask = -1;                          // >=0: mask node
    int mask_true = -1;                         // True-successor
  };

  std::vector<State> states;
  int start = 0;
  int accept = 0;
};

/// Builds the NFA for `input.expr`, prepending `(any*,)` unless anchored.
/// Fails with kInvalidArgument on unresolved event/mask names or a masked
/// operand that can match the empty sequence (which would make mask
/// evaluation ill-founded).
Result<Nfa> BuildNfa(const CompileInput& input);

/// Reference acceptor used by property tests: simulates the NFA directly
/// on a stream, with masks resolved by a fixed per-position oracle
/// (mask_values[i][m] = value of mask m evaluated after consuming the
/// i-th symbol). Returns the set of stream positions after which the NFA
/// accepts.
std::vector<bool> SimulateNfa(
    const Nfa& nfa, const std::vector<Symbol>& stream,
    const std::vector<std::vector<bool>>& mask_values);

}  // namespace ode

#endif  // ODE_EVENTS_NFA_H_
