#include "events/dfa.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"

namespace ode {

namespace {

constexpr int kNormalizeBound = 4096;

using StateSet = std::vector<int>;  // sorted, unique

class SubsetBuilder {
 public:
  explicit SubsetBuilder(const Nfa& nfa) : nfa_(nfa) {}

  Result<Dfa> Build() {
    std::set<int> start{nfa_.start};
    Closure(&start);
    ODE_ASSIGN_OR_RETURN(int32_t start_id, GetStateId(Canonical(start)));
    dfa_.start = start_id;

    while (!worklist_.empty()) {
      int32_t id = worklist_.back();
      worklist_.pop_back();
      ODE_RETURN_NOT_OK(Realize(id));
    }
    return std::move(dfa_);
  }

 private:
  struct NormResult {
    StateSet set;            // final set (mask-collapsed prefix applied)
    int32_t mask = -1;       // lowest remaining mask id, or -1
    StateSet true_set;       // valid when mask >= 0
    StateSet false_set;      // valid when mask >= 0
  };

  void Closure(std::set<int>* states) const {
    std::vector<int> stack(states->begin(), states->end());
    while (!stack.empty()) {
      int s = stack.back();
      stack.pop_back();
      for (int t : nfa_.states[s].eps) {
        if (states->insert(t).second) stack.push_back(t);
      }
    }
  }

  /// Canonical form of an (epsilon-closed) set: inert NFA nodes — no
  /// consuming edges, no mask, not the accept node — contribute nothing
  /// once their epsilon-closure is materialized, so dropping them makes
  /// behaviorally-equal sets compare equal. This is what collapses the
  /// post-mask "re-evaluation" superpositions into the plain self-loops
  /// of the paper's Figure 1.
  StateSet Canonical(const std::set<int>& closed) const {
    StateSet out;
    out.reserve(closed.size());
    for (int s : closed) {
      const Nfa::State& st = nfa_.states[s];
      if (st.edges.empty() && st.mask < 0 && s != nfa_.accept) continue;
      out.push_back(s);
    }
    return out;
  }

  int32_t LowestMask(const StateSet& set) const {
    int32_t lowest = -1;
    for (int s : set) {
      int32_t m = nfa_.states[s].mask;
      if (m >= 0 && (lowest < 0 || m < lowest)) lowest = m;
    }
    return lowest;
  }

  /// Splits `set` on its lowest mask id: fills true/false successor sets.
  void ResolveLowestMask(const StateSet& set, int32_t m, StateSet* t_set,
                         StateSet* f_set) const {
    std::set<int> f, true_targets;
    for (int s : set) {
      if (nfa_.states[s].mask == m) {
        true_targets.insert(nfa_.states[s].mask_true);
      } else {
        f.insert(s);
      }
    }
    Closure(&true_targets);
    std::set<int> t = f;
    t.insert(true_targets.begin(), true_targets.end());
    *t_set = Canonical(t);
    *f_set = Canonical(f);
  }

  /// Collapses irrelevant masks (True and False converge) repeatedly; if
  /// a genuine mask remains, reports it with its successor sets.
  Result<NormResult> Normalize(StateSet set) const {
    NormResult out;
    for (int iter = 0; iter < kNormalizeBound; ++iter) {
      int32_t m = LowestMask(set);
      if (m < 0) {
        out.set = std::move(set);
        return out;
      }
      StateSet t_set, f_set;
      ResolveLowestMask(set, m, &t_set, &f_set);
      if (t_set == f_set) {
        set = std::move(t_set);  // mask is irrelevant here; collapse
        continue;
      }
      out.set = std::move(set);
      out.mask = m;
      out.true_set = std::move(t_set);
      out.false_set = std::move(f_set);
      return out;
    }
    return Status::Internal(
        "mask normalization did not converge (pathological expression)");
  }

  /// Interns a (normalized) set as a DFA state id, queueing realization.
  Result<int32_t> GetStateId(StateSet raw) {
    ODE_ASSIGN_OR_RETURN(NormResult norm, Normalize(std::move(raw)));
    auto it = ids_.find(norm.set);
    if (it != ids_.end()) return it->second;
    int32_t id = static_cast<int32_t>(dfa_.states.size());
    dfa_.states.emplace_back();
    dfa_.states[id].accept =
        std::binary_search(norm.set.begin(), norm.set.end(), nfa_.accept);
    ids_.emplace(norm.set, id);
    sets_.push_back(norm.set);
    pending_.push_back(std::move(norm));
    worklist_.push_back(id);
    return id;
  }

  Status Realize(int32_t id) {
    // pending_ and sets_ are indexed by id (appended in GetStateId).
    NormResult norm = pending_[id];
    if (norm.mask >= 0) {
      dfa_.states[id].mask = norm.mask;
      ODE_ASSIGN_OR_RETURN(int32_t t_id, GetStateId(norm.true_set));
      dfa_.states[id].true_next = t_id;
      ODE_ASSIGN_OR_RETURN(int32_t f_id, GetStateId(norm.false_set));
      dfa_.states[id].false_next = f_id;
      return Status::OK();  // mask states have no consuming transitions
    }
    // Group moves by symbol.
    std::map<Symbol, std::set<int>> moves;
    for (int s : norm.set) {
      for (const auto& [sym, target] : nfa_.states[s].edges) {
        moves[sym].insert(target);
      }
    }
    for (auto& [sym, targets] : moves) {
      Closure(&targets);
      ODE_ASSIGN_OR_RETURN(int32_t target_id, GetStateId(Canonical(targets)));
      dfa_.states[id].transitions.emplace_back(sym, target_id);
    }
    return Status::OK();
  }

  const Nfa& nfa_;
  Dfa dfa_;
  std::map<StateSet, int32_t> ids_;
  std::vector<StateSet> sets_;
  std::vector<NormResult> pending_;
  std::vector<int32_t> worklist_;
};

}  // namespace

Result<Dfa> BuildDfa(const Nfa& nfa) { return SubsetBuilder(nfa).Build(); }

}  // namespace ode
