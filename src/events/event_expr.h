#ifndef ODE_EVENTS_EVENT_EXPR_H_
#define ODE_EVENTS_EVENT_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ode {

/// An interned basic-event identifier (see trigger/event_registry.h).
/// Symbols 0 and 1 are reserved for the True/False pseudo-events of the
/// paper's mask states; real events start at kFirstEventSymbol.
using Symbol = uint32_t;
inline constexpr Symbol kTrueSymbol = 0;
inline constexpr Symbol kFalseSymbol = 1;
inline constexpr Symbol kFirstEventSymbol = 2;

/// Abstract syntax of the Ode event language (paper §5.1):
///
///   basic event    `after Buy`, `before PayBill`, `BigBuy`,
///                  `before tcomplete`, `before tabort`
///   sequence       `E1 , E2`           (the regular `;`, renamed in Ode)
///   union          `E1 || E2`
///   repetition     `E*`                (zero or more)
///   mask           `E & pred`          (predicate evaluated when E matches)
///   relative       `relative(E1, E2)`  == `E1 , any* , E2`
///   wildcard       `any`               (any declared event of the class)
///
/// `+` (one or more) and `?` (optional) are provided as conventional
/// regular-language extensions.
///
/// Expressions are immutable trees shared via shared_ptr; the builder
/// functions below are the only way to make them.
struct EventExpr;
using ExprPtr = std::shared_ptr<const EventExpr>;

struct EventExpr {
  enum class Kind {
    kBasic,
    kAny,
    kSeq,
    kOr,
    kStar,
    kPlus,
    kOpt,
    kMask,
    kRelative,
  };

  Kind kind;
  /// kBasic: the event's declared name, e.g. "after Buy" or "BigBuy".
  std::string event_name;
  /// kMask: key of the predicate, e.g. "MoreCred()" or "(currBal>credLim)".
  std::string mask_name;
  ExprPtr left;
  ExprPtr right;
};

ExprPtr Basic(std::string event_name);
ExprPtr Any();
ExprPtr Seq(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Star(ExprPtr e);
ExprPtr Plus(ExprPtr e);
ExprPtr Opt(ExprPtr e);
ExprPtr Mask(ExprPtr e, std::string mask_name);
ExprPtr Relative(ExprPtr a, ExprPtr b);

/// Renders the expression in the concrete syntax accepted by the parser.
std::string ToString(const ExprPtr& e);

/// Structural equality.
bool ExprEquals(const ExprPtr& a, const ExprPtr& b);

/// Collects the distinct basic-event names referenced by the expression,
/// in first-appearance order.
std::vector<std::string> ReferencedEvents(const ExprPtr& e);

/// Collects the distinct mask keys referenced by the expression.
std::vector<std::string> ReferencedMasks(const ExprPtr& e);

/// True if the expression can match the empty event sequence (needed to
/// reject pathological masked operands and to warn on always-armed
/// triggers).
bool Nullable(const ExprPtr& e);

}  // namespace ode

#endif  // ODE_EVENTS_EVENT_EXPR_H_
