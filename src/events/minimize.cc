#include "events/minimize.h"

#include <deque>
#include <map>
#include <vector>

#include "common/logging.h"

namespace ode {

namespace {

/// One refinement signature: everything observationally distinguishable
/// about a state in one step, with successor states mapped to classes.
struct Signature {
  bool accept;
  int32_t mask;
  int32_t true_class;
  int32_t false_class;
  std::vector<std::pair<Symbol, int32_t>> transition_classes;

  bool operator<(const Signature& o) const {
    if (accept != o.accept) return accept < o.accept;
    if (mask != o.mask) return mask < o.mask;
    if (true_class != o.true_class) return true_class < o.true_class;
    if (false_class != o.false_class) return false_class < o.false_class;
    return transition_classes < o.transition_classes;
  }
};

}  // namespace

Dfa MinimizeDfa(const Dfa& dfa) {
  const size_t n = dfa.states.size();
  if (n == 0) return dfa;

  // Initial partition: by (accept, mask).
  std::vector<int32_t> cls(n);
  {
    std::map<std::pair<bool, int32_t>, int32_t> initial;
    for (size_t i = 0; i < n; ++i) {
      auto key = std::make_pair(dfa.states[i].accept, dfa.states[i].mask);
      auto [it, inserted] =
          initial.emplace(key, static_cast<int32_t>(initial.size()));
      (void)inserted;
      cls[i] = it->second;
    }
  }

  // Refine until stable.
  while (true) {
    std::map<Signature, int32_t> next_ids;
    std::vector<int32_t> next(n);
    for (size_t i = 0; i < n; ++i) {
      const Dfa::State& s = dfa.states[i];
      Signature sig;
      sig.accept = s.accept;
      sig.mask = s.mask;
      sig.true_class = s.true_next >= 0 ? cls[s.true_next] : -1;
      sig.false_class = s.false_next >= 0 ? cls[s.false_next] : -1;
      sig.transition_classes.reserve(s.transitions.size());
      for (const auto& [sym, target] : s.transitions) {
        sig.transition_classes.emplace_back(sym, cls[target]);
      }
      auto [it, inserted] =
          next_ids.emplace(std::move(sig), static_cast<int32_t>(next_ids.size()));
      (void)inserted;
      next[i] = it->second;
    }
    if (next == cls) break;
    cls = std::move(next);
  }

  // Pick one representative per class.
  std::map<int32_t, int32_t> representative;  // class -> original state
  for (size_t i = 0; i < n; ++i) {
    representative.emplace(cls[i], static_cast<int32_t>(i));
  }

  // Renumber classes by BFS from the start (True, False, then ascending
  // symbols) for a deterministic, paper-matching numbering.
  std::map<int32_t, int32_t> renumber;  // class -> new id
  std::vector<int32_t> order;           // new id -> class
  std::deque<int32_t> queue{cls[dfa.start]};
  renumber[cls[dfa.start]] = 0;
  order.push_back(cls[dfa.start]);
  while (!queue.empty()) {
    int32_t c = queue.front();
    queue.pop_front();
    const Dfa::State& rep = dfa.states[representative[c]];
    std::vector<int32_t> successors;
    if (rep.true_next >= 0) successors.push_back(cls[rep.true_next]);
    if (rep.false_next >= 0) successors.push_back(cls[rep.false_next]);
    for (const auto& [sym, target] : rep.transitions) {
      (void)sym;
      successors.push_back(cls[target]);
    }
    for (int32_t sc : successors) {
      if (renumber.emplace(sc, static_cast<int32_t>(order.size())).second) {
        order.push_back(sc);
        queue.push_back(sc);
      }
    }
  }

  Dfa out;
  out.start = 0;
  out.states.resize(order.size());
  for (size_t new_id = 0; new_id < order.size(); ++new_id) {
    const Dfa::State& rep = dfa.states[representative[order[new_id]]];
    Dfa::State& dst = out.states[new_id];
    dst.accept = rep.accept;
    dst.mask = rep.mask;
    dst.true_next =
        rep.true_next >= 0 ? renumber.at(cls[rep.true_next]) : -1;
    dst.false_next =
        rep.false_next >= 0 ? renumber.at(cls[rep.false_next]) : -1;
    dst.transitions.reserve(rep.transitions.size());
    for (const auto& [sym, target] : rep.transitions) {
      dst.transitions.emplace_back(sym, renumber.at(cls[target]));
    }
  }
  return out;
}

}  // namespace ode
