#ifndef ODE_ODEPP_PSET_H_
#define ODE_ODEPP_PSET_H_

#include "objstore/oid.h"

namespace ode {

/// Handle to a persistent set of T references — O++'s "facilities for
/// defining and manipulating sets" (§2). The set is itself a persistent
/// object; store its Oid in other objects to build object graphs.
/// Operations live on Session (SetInsert, SetErase, SetContains,
/// SetMembers, SetSize).
template <typename T>
class PSet {
 public:
  PSet() = default;
  explicit PSet(Oid oid) : oid_(oid) {}

  Oid oid() const { return oid_; }
  bool IsNull() const { return oid_.IsNull(); }

  friend bool operator==(PSet a, PSet b) { return a.oid_ == b.oid_; }

 private:
  Oid oid_;
};

}  // namespace ode

#endif  // ODE_ODEPP_PSET_H_
