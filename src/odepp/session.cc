#include "odepp/session.h"

#include <algorithm>

#include "common/logging.h"
#include "storage/disk_storage_manager.h"

namespace ode {

Session::Session(std::unique_ptr<Database> db, Schema* schema,
                 Options options)
    : db_(std::move(db)), schema_(schema), options_(options) {
  db_->metrics()->set_enabled(options.enable_metrics);
  // Configure before the TriggerManager exists — no spans can be
  // recorded concurrently yet, so the sampling knobs are published
  // race-free.
  Tracer::Options tropts;
  tropts.span_capacity = options.trace_span_capacity;
  tropts.sample_every_n_txns = options.trace_sample_every_n_txns;
  db_->tracer()->Configure(tropts);
  TriggerManager::Options topts;
  topts.index_buckets = options.trigger_index_buckets;
  topts.state_cache_capacity = options.trigger_state_cache_entries;
  topts.lookup_cache_capacity = options.trigger_lookup_cache_entries;
  topts.lock_stripes = options.trigger_lock_stripes;
  topts.trace_capacity = options.trigger_trace_capacity;
  topts.containment = options.trigger_containment;
  topts.max_cascade_depth = options.max_cascade_depth;
  topts.max_cascade_actions = options.max_cascade_actions;
  topts.failure_threshold = options.trigger_failure_threshold;
  topts.action_timeout_us = options.trigger_action_timeout_us;
  topts.action_retry_attempts = options.action_retry_attempts;
  topts.action_retry_backoff_us = options.action_retry_backoff_us;
  topts.dead_letter_capacity = options.dead_letter_capacity;
  topts.max_inflight_system_actions = options.max_inflight_system_actions;
  triggers_ = std::make_unique<TriggerManager>(db_.get(), topts);
  for (const TypeDescriptor* type : schema_->descriptors()) {
    triggers_->RegisterType(type);
  }
}

Result<std::unique_ptr<Session>> Session::Open(StorageKind kind,
                                               const std::string& path,
                                               Schema* schema) {
  return Open(kind, path, schema, Options());
}

Status Session::ValidateOptions(const Options& options) {
  // A misconfigured zero here is almost never "disable": it would
  // divide-by-zero a hash, livelock a batch, or (for the containment
  // knobs) silently disarm a guardrail the caller thinks is on. Knobs
  // where 0 IS a documented disable (the caches, trace capacities,
  // retries, watchdog, action budget, dead-letter ring, shedding)
  // are deliberately absent.
  auto bad = [](const char* field) {
    return Status::InvalidArgument(std::string("Session::Options::") +
                                   field + " must be nonzero");
  };
  if (options.trigger_index_buckets == 0) return bad("trigger_index_buckets");
  if (options.trigger_lock_stripes == 0) return bad("trigger_lock_stripes");
  if (options.commit_batch_max_txns == 0) return bad("commit_batch_max_txns");
  if (options.trace_sample_every_n_txns == 0) {
    return bad("trace_sample_every_n_txns");
  }
  if (options.trigger_containment) {
    if (options.max_cascade_depth == 0) return bad("max_cascade_depth");
  }
  return Status::OK();
}

Result<std::unique_ptr<Session>> Session::Open(StorageKind kind,
                                               const std::string& path,
                                               Schema* schema,
                                               Options options) {
  ODE_RETURN_NOT_OK(ValidateOptions(options));
  if (kind == StorageKind::kDisk) {
    if (path.empty()) {
      return Status::InvalidArgument("disk database needs a path");
    }
    // Built here (rather than via Database::Open) so session-level I/O
    // policy reaches the storage layer.
    DiskStorageManager::Options dopts;
    dopts.io_retry_attempts = options.io_retry_attempts;
    dopts.io_retry_backoff_us = options.io_retry_backoff_us;
    dopts.group_commit = options.group_commit;
    dopts.commit_batch_max_txns = options.commit_batch_max_txns;
    dopts.commit_batch_max_wait_us = options.commit_batch_max_wait_us;
    dopts.verify_page_checksums = options.verify_page_checksums;
    return OpenWith(std::make_unique<DiskStorageManager>(path, dopts),
                    schema, options);
  }
  InitLogLevelFromEnv();
  if (!schema->frozen()) {
    return Status::InvalidArgument("schema must be frozen before Open");
  }
  ODE_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                       Database::Open(kind, path));
  std::unique_ptr<Session> session(
      new Session(std::move(db), schema, options));
  ODE_RETURN_NOT_OK(session->WithTransaction([&](Transaction* txn) {
    return session->triggers_->PrimeActiveCounts(txn);
  }));
  return session;
}

Result<std::unique_ptr<Session>> Session::OpenWith(
    std::unique_ptr<StorageManager> store, Schema* schema, Options options) {
  ODE_RETURN_NOT_OK(ValidateOptions(options));
  InitLogLevelFromEnv();
  if (!schema->frozen()) {
    return Status::InvalidArgument("schema must be frozen before Open");
  }
  ODE_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                       Database::OpenWith(std::move(store)));
  std::unique_ptr<Session> session(
      new Session(std::move(db), schema, options));
  ODE_RETURN_NOT_OK(session->WithTransaction([&](Transaction* txn) {
    return session->triggers_->PrimeActiveCounts(txn);
  }));
  return session;
}

Session::~Session() {
  Status st = Close();
  if (!st.ok()) {
    ODE_LOG(kError) << "session close failed: " << st.ToString();
  }
}

Status Session::Close() {
  if (db_ == nullptr) return Status::OK();
  Status st = db_->Close();
  return st;
}

Result<Transaction*> Session::Begin() { return db_->txns()->Begin(); }

Status Session::Commit(Transaction* txn) { return db_->txns()->Commit(txn); }

Status Session::Abort(Transaction* txn) {
  return db_->txns()->Abort(txn, /*explicit_request=*/true);
}

Status Session::WithTransaction(
    const std::function<Status(Transaction*)>& fn) {
  ODE_ASSIGN_OR_RETURN(Transaction * txn, Begin());
  Status st = fn(txn);
  if (st.ok()) return Commit(txn);
  if (st.IsTransactionAborted()) return st;  // already rolled back
  Status ast = Abort(txn);
  if (!ast.ok()) {
    ODE_LOG(kWarn) << "abort after failure also failed: " << ast.ToString();
  }
  return st;
}

Result<const ClassRecord*> Session::RecordFor(
    const std::type_info& type) const {
  const ClassRecord* rec = schema_->RecordByType(type);
  if (rec == nullptr) {
    return Status::InvalidArgument(std::string("type ") + type.name() +
                                   " is not declared in the schema");
  }
  return rec;
}

Status Session::PostMemberEvent(Transaction* txn, Oid oid,
                                const TypeDescriptor* type,
                                const std::string& event_name,
                                Slice event_args) {
  const EventDecl* decl = type->FindEvent(event_name);
  if (decl == nullptr) return Status::OK();  // event not declared: no post
  return MaybeAutoAbort(
      txn, triggers_->PostEvent(txn, oid, type, decl->symbol, event_args));
}

Result<const ClassRecord*> Session::CheckStoredType(Transaction* txn,
                                                    Oid oid,
                                                    const ClassRecord* rec) {
  std::vector<char> image;
  ODE_RETURN_NOT_OK(db_->ReadObject(txn, oid, &image));
  Decoder dec(image);
  std::string stored_class;
  ODE_RETURN_NOT_OK(dec.GetString(&stored_class));
  const ClassRecord* actual = schema_->RecordByName(stored_class);
  if (actual == nullptr || !DerivesFrom(actual, rec)) {
    return Status::InvalidArgument("object " + oid.ToString() +
                                   " is not a " + rec->name);
  }
  return actual;
}

Status Session::MaybeAutoAbort(Transaction* txn, Status st) {
  if (st.IsTransactionAborted() && txn->active() &&
      !triggers_->InAction(txn)) {
    Status ast = Abort(txn);
    if (!ast.ok()) {
      ODE_LOG(kWarn) << "tabort unwind: abort failed: " << ast.ToString();
    }
  }
  return st;
}

Status Session::Deactivate(Transaction* txn, TriggerId id) {
  return triggers_->Deactivate(txn, id);
}

Status Session::DeactivateLocal(Transaction* txn, uint64_t local_id) {
  return triggers_->DeactivateLocal(txn, local_id);
}

// ------------------------------------------------------ persistent sets

namespace {

constexpr const char* kSetHeader = "__pset";

Result<std::vector<Oid>> DecodeSet(Slice image) {
  Decoder dec(image);
  std::string header;
  ODE_RETURN_NOT_OK(dec.GetString(&header));
  if (header != kSetHeader) {
    return Status::InvalidArgument("object is not a persistent set");
  }
  uint64_t n;
  ODE_RETURN_NOT_OK(dec.GetVarint(&n));
  if (n * 8 > dec.remaining()) {
    return Status::Corruption("persistent set: bad member count");
  }
  std::vector<Oid> members;
  members.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t oid;
    ODE_RETURN_NOT_OK(dec.GetU64(&oid));
    members.push_back(Oid(oid));
  }
  return members;
}

std::vector<char> EncodeSet(const std::vector<Oid>& members) {
  Encoder enc;
  enc.PutString(kSetHeader);
  enc.PutVarint(members.size());
  for (Oid m : members) enc.PutU64(m.value());
  return enc.Release();
}

}  // namespace

Result<Oid> Session::NewSetImpl(Transaction* txn) {
  return db_->NewObject(txn, Slice(EncodeSet({})));
}

Status Session::SetInsertImpl(Transaction* txn, Oid set, Oid member) {
  std::vector<char> image;
  ODE_RETURN_NOT_OK(db_->ReadObjectForUpdate(txn, set, &image));
  ODE_ASSIGN_OR_RETURN(std::vector<Oid> members, DecodeSet(Slice(image)));
  auto it = std::lower_bound(members.begin(), members.end(), member);
  if (it != members.end() && *it == member) {
    return Status::AlreadyExists("already a set member");
  }
  members.insert(it, member);
  return db_->WriteObject(txn, set, Slice(EncodeSet(members)));
}

Status Session::SetEraseImpl(Transaction* txn, Oid set, Oid member) {
  std::vector<char> image;
  ODE_RETURN_NOT_OK(db_->ReadObjectForUpdate(txn, set, &image));
  ODE_ASSIGN_OR_RETURN(std::vector<Oid> members, DecodeSet(Slice(image)));
  auto it = std::lower_bound(members.begin(), members.end(), member);
  if (it == members.end() || *it != member) {
    return Status::NotFound("not a set member");
  }
  members.erase(it);
  return db_->WriteObject(txn, set, Slice(EncodeSet(members)));
}

Result<bool> Session::SetContainsImpl(Transaction* txn, Oid set,
                                      Oid member) {
  std::vector<char> image;
  ODE_RETURN_NOT_OK(db_->ReadObject(txn, set, &image));
  ODE_ASSIGN_OR_RETURN(std::vector<Oid> members, DecodeSet(Slice(image)));
  return std::binary_search(members.begin(), members.end(), member);
}

Result<std::vector<Oid>> Session::SetMembersImpl(Transaction* txn,
                                                 Oid set) {
  std::vector<char> image;
  ODE_RETURN_NOT_OK(db_->ReadObject(txn, set, &image));
  return DecodeSet(Slice(image));
}

// ------------------------------------------------------- timed triggers

namespace {
constexpr const char* kTimerRoot = "ode.timers";
}  // namespace

Result<Session::TimerState> Session::LoadTimers(Transaction* txn,
                                                Oid* holder) {
  TimerState state;
  auto root = db_->GetRoot(txn, kTimerRoot);
  if (!root.ok()) {
    if (root.status().IsNotFound()) {
      *holder = Oid::Null();
      return state;
    }
    return root.status();
  }
  *holder = root.value();
  std::vector<char> image;
  ODE_RETURN_NOT_OK(db_->ReadObjectForUpdate(txn, *holder, &image));
  Decoder dec(image);
  ODE_RETURN_NOT_OK(dec.GetI64(&state.now));
  uint64_t n;
  ODE_RETURN_NOT_OK(dec.GetVarint(&n));
  if (n * 17 > dec.remaining()) {
    return Status::Corruption("timer schedule: bad entry count");
  }
  state.entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    TimerEntry entry;
    uint64_t oid;
    ODE_RETURN_NOT_OK(dec.GetI64(&entry.time));
    ODE_RETURN_NOT_OK(dec.GetU64(&oid));
    entry.obj = Oid(oid);
    ODE_RETURN_NOT_OK(dec.GetString(&entry.event_name));
    state.entries.push_back(std::move(entry));
  }
  return state;
}

Status Session::StoreTimers(Transaction* txn, Oid holder,
                            const TimerState& state) {
  Encoder enc;
  enc.PutI64(state.now);
  enc.PutVarint(state.entries.size());
  for (const TimerEntry& entry : state.entries) {
    enc.PutI64(entry.time);
    enc.PutU64(entry.obj.value());
    enc.PutString(entry.event_name);
  }
  if (holder.IsNull()) {
    ODE_ASSIGN_OR_RETURN(Oid oid, db_->NewObject(txn, Slice(enc.buffer())));
    return db_->SetRoot(txn, kTimerRoot, oid);
  }
  return db_->WriteObject(txn, holder, Slice(enc.buffer()));
}

Result<int64_t> Session::Now(Transaction* txn) {
  Oid holder;
  ODE_ASSIGN_OR_RETURN(TimerState state, LoadTimers(txn, &holder));
  return state.now;
}

Status Session::ScheduleUserEventImpl(Transaction* txn, Oid obj,
                                      const std::string& event_name,
                                      int64_t at) {
  Oid holder;
  ODE_ASSIGN_OR_RETURN(TimerState state, LoadTimers(txn, &holder));
  if (at <= state.now) {
    return Status::InvalidArgument(
        "scheduled time " + std::to_string(at) + " is not after now (" +
        std::to_string(state.now) + ")");
  }
  state.entries.push_back(TimerEntry{at, obj, event_name});
  return StoreTimers(txn, holder, state);
}

Status Session::AdvanceTime(Transaction* txn, int64_t to) {
  Oid holder;
  ODE_ASSIGN_OR_RETURN(TimerState state, LoadTimers(txn, &holder));
  if (to < state.now) {
    return Status::InvalidArgument("logical time cannot go backwards");
  }
  // Split into due and future, processing due events in time order.
  std::vector<TimerEntry> due, future;
  for (TimerEntry& entry : state.entries) {
    (entry.time <= to ? due : future).push_back(std::move(entry));
  }
  std::stable_sort(due.begin(), due.end(),
                   [](const TimerEntry& a, const TimerEntry& b) {
                     return a.time < b.time;
                   });
  state.entries = std::move(future);
  state.now = to;
  ODE_RETURN_NOT_OK(StoreTimers(txn, holder, state));

  for (const TimerEntry& entry : due) {
    if (!db_->ObjectExists(txn, entry.obj)) continue;  // pdeleted since
    std::vector<char> image;
    ODE_RETURN_NOT_OK(db_->ReadObject(txn, entry.obj, &image));
    auto loaded = schema_->DecodeImage(Slice(image));
    if (!loaded.ok()) return loaded.status();
    const TypeDescriptor* type = loaded->record->descriptor.get();
    const EventDecl* decl = type->FindEvent(entry.event_name);
    if (decl == nullptr) continue;  // event no longer declared
    triggers_->NoteAccess(txn, entry.obj, type);
    ODE_RETURN_NOT_OK(MaybeAutoAbort(
        txn, triggers_->PostEvent(txn, entry.obj, type, decl->symbol)));
  }
  return Status::OK();
}

bool Session::IsTriggerActive(Transaction* txn, TriggerId id) {
  return triggers_->IsActive(txn, id);
}

// -------------------------------------------------------- observability

MetricsSnapshot Session::MetricsSnapshot() const {
  return db_->metrics()->Snapshot();
}

std::string Session::DumpMetricsText() const {
  return db_->metrics()->DumpText();
}

std::string Session::DumpTimeline(TxnId txn) const {
  return db_->tracer()->DumpTimeline(txn);
}

Result<FiringExplanation> Session::ExplainFiring(TriggerId id) const {
  return ode::ExplainFiring(db_->tracer()->Snapshot(), id);
}

std::string Session::ExportChromeTrace() const {
  return db_->tracer()->ToChromeTraceJson();
}

Result<ScrubReport> Session::VerifyIntegrity() {
  return db_->store()->VerifyIntegrity();
}

Result<std::vector<TriggerManager::QuarantinedTrigger>>
Session::QuarantinedTriggers() {
  ODE_ASSIGN_OR_RETURN(Transaction * txn, Begin());
  auto result = triggers_->ListQuarantined(txn);
  if (!result.ok()) {
    (void)Abort(txn);
    return result.status();
  }
  ODE_RETURN_NOT_OK(Commit(txn));
  return result;
}

Result<std::vector<TriggerManager::DeadLetter>> Session::DeadLetters() {
  ODE_ASSIGN_OR_RETURN(Transaction * txn, Begin());
  auto result = triggers_->DeadLetters(txn);
  if (!result.ok()) {
    (void)Abort(txn);
    return result.status();
  }
  ODE_RETURN_NOT_OK(Commit(txn));
  return result;
}

std::string Session::DumpTrace() const {
  TriggerTraceRing* ring = triggers_->trace();
  if (ring == nullptr) {
    return "trigger tracing disabled (Session::Options::trigger_trace_"
           "capacity is 0)\n";
  }
  return ring->Dump();
}

}  // namespace ode
