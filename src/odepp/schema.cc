#include "odepp/schema.h"

#include "common/logging.h"
#include "events/event_parser.h"
#include "trigger/event_registry.h"

namespace ode {

ClassRecord* Schema::AddRecord(std::string name, std::string base_name,
                               const std::type_info& type) {
  ODE_CHECK(!frozen_) << "DeclareClass after Freeze";
  ODE_CHECK(by_name_.find(name) == by_name_.end())
      << "class '" << name << "' declared twice";
  auto rec = std::make_unique<ClassRecord>();
  rec->name = std::move(name);
  rec->base_name = std::move(base_name);
  rec->type = &type;
  ClassRecord* raw = rec.get();
  by_name_[raw->name] = raw;
  by_type_[std::type_index(type)] = raw;
  records_.push_back(std::move(rec));
  return raw;
}

const ClassRecord* Schema::RecordByName(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const ClassRecord* Schema::RecordByType(const std::type_info& type) const {
  auto it = by_type_.find(std::type_index(type));
  return it == by_type_.end() ? nullptr : it->second;
}

void* Schema::UpcastTo(void* self, const ClassRecord* from,
                       const ClassRecord* to) {
  const ClassRecord* r = from;
  while (r != nullptr && r != to) {
    ODE_CHECK(r->to_base != nullptr)
        << "no upcast path from " << from->name << " to " << to->name;
    self = r->to_base(self);
    r = r->base;
  }
  ODE_CHECK(r == to) << "class " << from->name << " does not derive from "
                     << to->name;
  return self;
}

Result<Schema::Loaded> Schema::DecodeImage(Slice image) const {
  Decoder dec(image);
  std::string class_name;
  ODE_RETURN_NOT_OK(dec.GetString(&class_name));
  const ClassRecord* rec = RecordByName(class_name);
  if (rec == nullptr) {
    return Status::NotFound("stored object of unregistered class '" +
                            class_name + "'");
  }
  auto object = rec->decode(dec);
  if (!object.ok()) return object.status();
  Loaded out;
  out.object = std::move(object).value();
  out.record = rec;
  return out;
}

std::vector<char> Schema::EncodeImage(const ClassRecord* record,
                                      const ErasedObject& object) {
  Encoder enc;
  enc.PutString(record->name);
  object.EncodeTo(enc);
  return enc.Release();
}

std::vector<const TypeDescriptor*> Schema::descriptors() const {
  std::vector<const TypeDescriptor*> out;
  out.reserve(records_.size());
  for (const auto& rec : records_) {
    if (rec->descriptor != nullptr) out.push_back(rec->descriptor.get());
  }
  return out;
}

std::string Schema::ToOppSource() const {
  std::string out;
  for (const auto& rec : records_) {
    out += "persistent class " + rec->name;
    if (!rec->base_name.empty()) out += " : public " + rec->base_name;
    out += " {\n";
    if (!rec->event_specs.empty()) {
      out += "  event ";
      for (size_t i = 0; i < rec->event_specs.size(); ++i) {
        if (i > 0) out += ", ";
        out += rec->event_specs[i].name;
      }
      out += ";\n";
    }
    const std::vector<ClassRecord::TriggerSpec>& specs = rec->trigger_specs;
    for (const ClassRecord::TriggerSpec& spec : specs) {
      out += "  trigger " + spec.name + "() : ";
      if (spec.perpetual) out += "perpetual ";
      switch (spec.coupling) {
        case CouplingMode::kImmediate:
          break;  // the default mode is unannotated in O++
        case CouplingMode::kDeferred:
          out += "end ";
          break;
        case CouplingMode::kDependent:
          out += "dependent ";
          break;
        case CouplingMode::kIndependent:
          out += "!dependent ";
          break;
      }
      out += spec.event_text + " ==> { ... };\n";
    }
    out += "};\n\n";
  }
  return out;
}

namespace {

/// Finds a mask predicate by key in the class or its bases.
const std::function<Result<bool>(MaskEvalContext&)>* FindMask(
    const ClassRecord* rec, const std::string& key) {
  for (const ClassRecord* r = rec; r != nullptr; r = r->base) {
    for (const auto& [mask_key, fn] : r->masks) {
      if (mask_key == key) return &fn;
    }
  }
  return nullptr;
}

}  // namespace

Status Schema::Freeze() {
  if (frozen_) return Status::Internal("schema already frozen");
  EventRegistry& registry = EventRegistry::Global();

  for (const auto& rec_ptr : records_) {
    ClassRecord* rec = rec_ptr.get();

    // Resolve the base class (must be declared earlier).
    const TypeDescriptor* base_desc = nullptr;
    if (!rec->base_name.empty()) {
      auto it = by_name_.find(rec->base_name);
      if (it == by_name_.end() || it->second->descriptor == nullptr) {
        return Status::InvalidArgument(
            "class " + rec->name + ": base '" + rec->base_name +
            "' not declared before it");
      }
      rec->base = it->second;
      base_desc = rec->base->descriptor.get();
    }
    rec->descriptor =
        std::make_unique<TypeDescriptor>(rec->name, base_desc);

    // Intern this class's declared events (the eventRep table of §5.2;
    // events inherited from the base keep the base's symbols).
    for (const ClassRecord::EventSpec& spec : rec->event_specs) {
      for (const EventDecl& existing : rec->descriptor->own_events()) {
        if (existing.name == spec.name) {
          return Status::InvalidArgument("class " + rec->name +
                                         ": event '" + spec.name +
                                         "' declared twice");
        }
      }
      EventDecl decl;
      decl.kind = spec.kind;
      decl.name = spec.name;
      decl.symbol = registry.Intern(rec->name, spec.name);
      rec->descriptor->AddEvent(std::move(decl));
    }

    // Compile each trigger's event expression into its FSM (§5.1).
    uint32_t triggernum = 0;
    for (const ClassRecord::TriggerSpec& spec : rec->trigger_specs) {
      const TriggerInfo* dup =
          rec->descriptor->FindTrigger(spec.name, nullptr);
      if (dup != nullptr) {
        return Status::InvalidArgument("class " + rec->name +
                                       ": trigger '" + spec.name +
                                       "' declared twice");
      }
      auto parsed = ParseEventExpr(spec.event_text);
      if (!parsed.ok()) {
        return Status::ParseError("trigger " + rec->name +
                                  "::" + spec.name + ": " +
                                  parsed.status().message());
      }

      CompileInput input;
      input.expr = parsed.value().expr;
      input.anchored = parsed.value().anchored;
      for (const EventDecl& decl : rec->descriptor->AllEvents()) {
        input.alphabet.push_back(decl.symbol);
        input.event_symbols[decl.name] = decl.symbol;
      }

      TriggerInfo info;
      info.name = spec.name;
      info.triggernum = triggernum++;
      info.expr = input.expr;
      info.anchored = input.anchored;
      info.coupling = spec.coupling;
      info.perpetual = spec.perpetual;
      info.action = spec.action;

      for (const std::string& key : ReferencedMasks(input.expr)) {
        const auto* fn = FindMask(rec, key);
        if (fn == nullptr) {
          return Status::InvalidArgument(
              "trigger " + rec->name + "::" + spec.name +
              " references unregistered mask '" + key + "'");
        }
        int32_t id = static_cast<int32_t>(info.masks.size());
        input.mask_ids[key] = id;
        info.mask_ids[key] = id;
        info.masks.push_back(*fn);
      }

      auto fsm = CompileFsm(input);
      if (!fsm.ok()) {
        return Status(fsm.status().code(),
                      "trigger " + rec->name + "::" + spec.name + ": " +
                          fsm.status().message());
      }
      info.fsm = std::move(fsm).value();
      rec->descriptor->AddTrigger(std::move(info));
    }
  }
  frozen_ = true;
  return Status::OK();
}

}  // namespace ode
