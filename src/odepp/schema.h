#ifndef ODE_ODEPP_SCHEMA_H_
#define ODE_ODEPP_SCHEMA_H_

#include <any>
#include <functional>
#include <memory>
#include <string>
#include <typeindex>
#include <typeinfo>
#include <unordered_map>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "common/status.h"
#include "objstore/type_descriptor.h"
#include "trigger/trigger_manager.h"

namespace ode {

class Schema;

/// Types storable in Ode must provide value serialization:
///   void Encode(Encoder&) const;
///   static Result<T> Decode(Decoder&);
/// Derived classes must encode their base-class fields first (call
/// Base::Encode at the start) so base-typed reads see a valid prefix.
template <typename T>
concept OdeSerializable = requires(const T& t, Encoder& enc, Decoder& dec) {
  { t.Encode(enc) } -> std::same_as<void>;
  { T::Decode(dec) } -> std::same_as<Result<T>>;
};

/// A decoded persistent object of some registered class, type-erased so
/// base-class triggers can operate on derived objects without slicing.
class ErasedObject {
 public:
  virtual ~ErasedObject() = default;
  virtual void* self() = 0;
  virtual const void* self() const = 0;
  virtual void EncodeTo(Encoder& enc) const = 0;
};

namespace odepp_internal {

template <OdeSerializable T>
class TypedObject final : public ErasedObject {
 public:
  explicit TypedObject(T value) : value_(std::move(value)) {}
  void* self() override { return &value_; }
  const void* self() const override { return &value_; }
  void EncodeTo(Encoder& enc) const override { value_.Encode(enc); }
  T& value() { return value_; }

 private:
  T value_;
};

struct MethodEntry {
  std::string name;
  std::any pointer;  // the registered member-function pointer
};

}  // namespace odepp_internal

/// Everything the Schema knows about one registered class. `descriptor`
/// (the paper's type_X object) is built by Schema::Freeze from the
/// recorded specs.
struct ClassRecord {
  struct EventSpec {
    EventKind kind;
    std::string name;  // normalized, e.g. "after Buy"
  };
  struct TriggerSpec {
    std::string name;
    std::string event_text;
    CouplingMode coupling = CouplingMode::kImmediate;
    bool perpetual = false;
    std::function<Status(TriggerFireContext&)> action;
  };

  std::string name;
  std::string base_name;  // "" for root classes
  const std::type_info* type = nullptr;

  /// Decodes an object payload (after the class-name header).
  std::function<Result<std::unique_ptr<ErasedObject>>(Decoder&)> decode;
  /// Adjusts a pointer to this class into a pointer to its direct base.
  std::function<void*(void*)> to_base;

  std::vector<odepp_internal::MethodEntry> methods;
  std::vector<EventSpec> event_specs;
  std::vector<TriggerSpec> trigger_specs;
  /// Class-level mask predicates by key (e.g. "MoreCred()").
  std::vector<std::pair<std::string,
                        std::function<Result<bool>(MaskEvalContext&)>>>
      masks;

  // Filled by Freeze():
  ClassRecord* base = nullptr;
  std::unique_ptr<TypeDescriptor> descriptor;
};

template <typename T>
class ClassDef;

/// The application schema: the set of persistent classes with their
/// events, masks, triggers, and methods. Declaring classes and then
/// calling Freeze() plays the role of the O++ compiler: it interns basic
/// events (§5.2), compiles every trigger's event expression to an FSM
/// (§5.1), and builds the per-class type descriptors (§5.4.4) — all at
/// program start, mirroring the paper's compile-the-FSM-every-run choice
/// (§5.1.3).
class Schema {
 public:
  Schema() = default;

  Schema(const Schema&) = delete;
  Schema& operator=(const Schema&) = delete;

  /// Declares a root persistent class.
  template <OdeSerializable T>
  ClassDef<T> DeclareClass(std::string name);

  /// Declares a class deriving from an already-declared base. `Base` must
  /// be T's C++ base class; `base_name` its registered name.
  template <OdeSerializable T, typename Base>
  ClassDef<T> DeclareClass(std::string name, const std::string& base_name);

  /// Compiles all declared triggers; required before opening a Session.
  Status Freeze();
  bool frozen() const { return frozen_; }

  const ClassRecord* RecordByName(const std::string& name) const;
  const ClassRecord* RecordByType(const std::type_info& type) const;

  /// Pointer adjustment from a derived record to one of its bases.
  static void* UpcastTo(void* self, const ClassRecord* from,
                        const ClassRecord* to);

  /// A decoded image together with its dynamic class.
  struct Loaded {
    std::unique_ptr<ErasedObject> object;
    const ClassRecord* record = nullptr;
  };

  /// Decodes a stored image (class-name header + payload).
  Result<Loaded> DecodeImage(Slice image) const;

  /// Encodes an object with its class-name header.
  static std::vector<char> EncodeImage(const ClassRecord* record,
                                       const ErasedObject& object);

  /// All type descriptors, for TriggerManager registration.
  std::vector<const TypeDescriptor*> descriptors() const;

  /// Renders the frozen schema in O++-style surface syntax — the class
  /// declarations a paper reader would recognize (§2, §4). For
  /// documentation and debugging.
  std::string ToOppSource() const;

 private:
  template <typename T>
  friend class ClassDef;

  ClassRecord* AddRecord(std::string name, std::string base_name,
                         const std::type_info& type);

  std::vector<std::unique_ptr<ClassRecord>> records_;
  std::unordered_map<std::string, ClassRecord*> by_name_;
  std::unordered_map<std::type_index, ClassRecord*> by_type_;
  bool frozen_ = false;
};

/// Fluent builder for one class's schema entry. All calls must happen
/// before Schema::Freeze().
template <typename T>
class ClassDef {
 public:
  ClassDef(Schema* schema, ClassRecord* record)
      : schema_(schema), record_(record) {}

  /// Declares a basic event: "before F" / "after F" (member function
  /// events), "before tcomplete" / "before tabort" (transaction events),
  /// or any other identifier (a user-defined event).
  ClassDef& Event(const std::string& spec);

  /// Binds a member function to its event name so Session::Invoke can
  /// post its before/after events (the WithPost wrapper of §5.3).
  template <typename R, typename... A>
  ClassDef& Method(std::string name, R (T::*fn)(A...)) {
    record_->methods.push_back({std::move(name), std::any(fn)});
    return *this;
  }
  template <typename R, typename... A>
  ClassDef& Method(std::string name, R (T::*fn)(A...) const) {
    record_->methods.push_back({std::move(name), std::any(fn)});
    return *this;
  }

  /// Registers a mask predicate under its key as written in event
  /// expressions (e.g. "MoreCred()" or "(currBal > 0.8*credLim)"). The
  /// predicate sees the anchor object and the activation parameters.
  ClassDef& Mask(std::string key,
                 std::function<Result<bool>(const T&, MaskEvalContext&)> fn);

  /// Declares a trigger: name, event expression (concrete syntax), the
  /// action, and the coupling mode / perpetual flag (§4, §4.2).
  ClassDef& Trigger(std::string name, std::string event_text,
                    std::function<Status(T&, TriggerFireContext&)> action,
                    CouplingMode coupling = CouplingMode::kImmediate,
                    bool perpetual = false);

  /// Declares an intra-object constraint as a special case of a trigger
  /// (paper §8): `predicate` must hold whenever a transaction that
  /// touched the object commits; a violation aborts the transaction.
  /// Implemented as a perpetual trigger on `before tcomplete` masked by
  /// the predicate's negation, whose action is tabort. Like any trigger
  /// it must be activated per object (Activate/ActivateLocal).
  ClassDef& Constraint(
      const std::string& name,
      std::function<Result<bool>(const T&, MaskEvalContext&)> predicate,
      std::string message = "");

 private:
  Schema* schema_;
  ClassRecord* record_;
};

// ---------------------------------------------------------------- inline

template <OdeSerializable T>
ClassDef<T> Schema::DeclareClass(std::string name) {
  ClassRecord* rec = AddRecord(std::move(name), "", typeid(T));
  rec->decode = [](Decoder& dec) -> Result<std::unique_ptr<ErasedObject>> {
    auto value = T::Decode(dec);
    if (!value.ok()) return value.status();
    return std::unique_ptr<ErasedObject>(
        new odepp_internal::TypedObject<T>(std::move(value).value()));
  };
  return ClassDef<T>(this, rec);
}

template <OdeSerializable T, typename Base>
ClassDef<T> Schema::DeclareClass(std::string name,
                                 const std::string& base_name) {
  static_assert(std::is_base_of_v<Base, T>,
                "Base must be a C++ base class of T");
  ClassRecord* rec = AddRecord(std::move(name), base_name, typeid(T));
  rec->decode = [](Decoder& dec) -> Result<std::unique_ptr<ErasedObject>> {
    auto value = T::Decode(dec);
    if (!value.ok()) return value.status();
    return std::unique_ptr<ErasedObject>(
        new odepp_internal::TypedObject<T>(std::move(value).value()));
  };
  rec->to_base = [](void* self) -> void* {
    return static_cast<Base*>(static_cast<T*>(self));
  };
  return ClassDef<T>(this, rec);
}

template <typename T>
ClassDef<T>& ClassDef<T>::Event(const std::string& spec) {
  ClassRecord::EventSpec event;
  event.name = spec;
  if (spec == "before tcomplete") {
    event.kind = EventKind::kBeforeTComplete;
  } else if (spec == "before tabort") {
    event.kind = EventKind::kBeforeTAbort;
  } else if (spec.rfind("before ", 0) == 0) {
    event.kind = EventKind::kBeforeMember;
  } else if (spec.rfind("after ", 0) == 0) {
    event.kind = EventKind::kAfterMember;
  } else {
    event.kind = EventKind::kUser;
  }
  record_->event_specs.push_back(std::move(event));
  return *this;
}

template <typename T>
ClassDef<T>& ClassDef<T>::Mask(
    std::string key,
    std::function<Result<bool>(const T&, MaskEvalContext&)> fn) {
  Schema* schema = schema_;
  const ClassRecord* defining = record_;
  record_->masks.emplace_back(
      std::move(key),
      [schema, defining, fn = std::move(fn)](
          MaskEvalContext& ctx) -> Result<bool> {
        std::vector<char> image;
        ODE_RETURN_NOT_OK(
            ctx.db()->ReadObject(ctx.txn(), ctx.anchor(), &image));
        ODE_ASSIGN_OR_RETURN(Schema::Loaded loaded,
                             schema->DecodeImage(Slice(image)));
        const T* obj = static_cast<const T*>(
            Schema::UpcastTo(loaded.object->self(), loaded.record, defining));
        return fn(*obj, ctx);
      });
  return *this;
}

template <typename T>
ClassDef<T>& ClassDef<T>::Trigger(
    std::string name, std::string event_text,
    std::function<Status(T&, TriggerFireContext&)> action,
    CouplingMode coupling, bool perpetual) {
  Schema* schema = schema_;
  const ClassRecord* defining = record_;
  ClassRecord::TriggerSpec spec;
  spec.name = std::move(name);
  spec.event_text = std::move(event_text);
  spec.coupling = coupling;
  spec.perpetual = perpetual;
  spec.action = [schema, defining, action = std::move(action)](
                    TriggerFireContext& ctx) -> Status {
    std::vector<char> image;
    ODE_RETURN_NOT_OK(
        ctx.db()->ReadObjectForUpdate(ctx.txn(), ctx.anchor(), &image));
    ODE_ASSIGN_OR_RETURN(Schema::Loaded loaded,
                         schema->DecodeImage(Slice(image)));
    T* obj = static_cast<T*>(
        Schema::UpcastTo(loaded.object->self(), loaded.record, defining));
    ODE_RETURN_NOT_OK(action(*obj, ctx));
    if (!ctx.txn()->abort_requested()) {
      std::vector<char> updated =
          Schema::EncodeImage(loaded.record, *loaded.object);
      ODE_RETURN_NOT_OK(
          ctx.db()->WriteObject(ctx.txn(), ctx.anchor(), Slice(updated)));
    }
    return Status::OK();
  };
  record_->trigger_specs.push_back(std::move(spec));
  return *this;
}

template <typename T>
ClassDef<T>& ClassDef<T>::Constraint(
    const std::string& name,
    std::function<Result<bool>(const T&, MaskEvalContext&)> predicate,
    std::string message) {
  // Ensure the class declares `before tcomplete` (idempotent).
  bool declared = false;
  for (const ClassRecord::EventSpec& spec : record_->event_specs) {
    if (spec.name == "before tcomplete") declared = true;
  }
  if (!declared) Event("before tcomplete");

  std::string mask_key = "__violated_" + name + "()";
  Mask(mask_key,
       [predicate = std::move(predicate)](
           const T& obj, MaskEvalContext& ctx) -> Result<bool> {
         auto holds = predicate(obj, ctx);
         if (!holds.ok()) return holds.status();
         return !holds.value();
       });
  if (message.empty()) message = "constraint " + name + " violated";
  return Trigger(
      name, "before tcomplete & " + mask_key,
      [message = std::move(message)](T&, TriggerFireContext& ctx) -> Status {
        ctx.Tabort(message);
        return Status::OK();
      },
      CouplingMode::kImmediate, /*perpetual=*/true);
}

}  // namespace ode

#endif  // ODE_ODEPP_SCHEMA_H_
