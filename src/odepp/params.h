#ifndef ODE_ODEPP_PARAMS_H_
#define ODE_ODEPP_PARAMS_H_

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "objstore/oid.h"

namespace ode {

/// Trigger-activation parameters. In the paper, trigger arguments are
/// stored persistently inside the per-trigger TriggerState subclass (e.g.
/// CredCardAutoRaiseLimitStruct's `amount`); here they travel as an
/// encoded tuple: PackParams at activation, UnpackParams inside masks and
/// actions.
///
///   TriggerId id = *s.Activate(txn, card, "AutoRaiseLimit",
///                              PackParams(1000.0f));
///   ...
///   auto [amount] = *UnpackParams<float>(ctx.params());

namespace params_internal {

inline void PutOne(Encoder& enc, bool v) { enc.PutBool(v); }
inline void PutOne(Encoder& enc, int32_t v) { enc.PutI32(v); }
inline void PutOne(Encoder& enc, uint32_t v) { enc.PutU32(v); }
inline void PutOne(Encoder& enc, int64_t v) { enc.PutI64(v); }
inline void PutOne(Encoder& enc, uint64_t v) { enc.PutU64(v); }
inline void PutOne(Encoder& enc, float v) { enc.PutFloat(v); }
inline void PutOne(Encoder& enc, double v) { enc.PutDouble(v); }
inline void PutOne(Encoder& enc, const std::string& v) { enc.PutString(v); }
inline void PutOne(Encoder& enc, const char* v) {
  enc.PutString(std::string(v));
}
inline void PutOne(Encoder& enc, Oid v) { enc.PutU64(v.value()); }

template <typename T>
Result<T> GetOne(Decoder& dec);

template <>
inline Result<bool> GetOne<bool>(Decoder& dec) {
  bool v;
  ODE_RETURN_NOT_OK(dec.GetBool(&v));
  return v;
}
template <>
inline Result<int32_t> GetOne<int32_t>(Decoder& dec) {
  int32_t v;
  ODE_RETURN_NOT_OK(dec.GetI32(&v));
  return v;
}
template <>
inline Result<uint32_t> GetOne<uint32_t>(Decoder& dec) {
  uint32_t v;
  ODE_RETURN_NOT_OK(dec.GetU32(&v));
  return v;
}
template <>
inline Result<int64_t> GetOne<int64_t>(Decoder& dec) {
  int64_t v;
  ODE_RETURN_NOT_OK(dec.GetI64(&v));
  return v;
}
template <>
inline Result<uint64_t> GetOne<uint64_t>(Decoder& dec) {
  uint64_t v;
  ODE_RETURN_NOT_OK(dec.GetU64(&v));
  return v;
}
template <>
inline Result<float> GetOne<float>(Decoder& dec) {
  float v;
  ODE_RETURN_NOT_OK(dec.GetFloat(&v));
  return v;
}
template <>
inline Result<double> GetOne<double>(Decoder& dec) {
  double v;
  ODE_RETURN_NOT_OK(dec.GetDouble(&v));
  return v;
}
template <>
inline Result<std::string> GetOne<std::string>(Decoder& dec) {
  std::string v;
  ODE_RETURN_NOT_OK(dec.GetString(&v));
  return v;
}
template <>
inline Result<Oid> GetOne<Oid>(Decoder& dec) {
  uint64_t v;
  ODE_RETURN_NOT_OK(dec.GetU64(&v));
  return Oid(v);
}

template <typename... Ts>
Result<std::tuple<Ts...>> UnpackInto(Decoder& dec);

template <typename T, typename... Rest>
Result<std::tuple<T, Rest...>> UnpackHead(Decoder& dec) {
  auto head = GetOne<T>(dec);
  if (!head.ok()) return head.status();
  auto tail = UnpackInto<Rest...>(dec);
  if (!tail.ok()) return tail.status();
  return std::tuple_cat(std::make_tuple(std::move(head).value()),
                        std::move(tail).value());
}

template <typename... Ts>
Result<std::tuple<Ts...>> UnpackInto(Decoder& dec) {
  if constexpr (sizeof...(Ts) == 0) {
    (void)dec;
    return std::tuple<>();
  } else {
    return UnpackHead<Ts...>(dec);
  }
}

}  // namespace params_internal

/// Encodes trigger-activation arguments.
template <typename... Ts>
std::vector<char> PackParams(const Ts&... values) {
  Encoder enc;
  (params_internal::PutOne(enc, values), ...);
  return enc.Release();
}

/// Decodes trigger-activation arguments (types must match PackParams).
template <typename... Ts>
Result<std::tuple<Ts...>> UnpackParams(Slice params) {
  Decoder dec(params);
  return params_internal::UnpackInto<Ts...>(dec);
}

}  // namespace ode

#endif  // ODE_ODEPP_PARAMS_H_
