#include "odepp/opp_loader.h"

#include <cctype>

namespace ode {

namespace {

/// Character-level scanner over the O++-style source, tracking line
/// numbers for error messages and skipping `//` comments.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool Consume(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Reads an identifier (possibly prefixed with '!', for !dependent).
  std::string Ident() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '!') ++pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  /// Raw text up to (not including) the delimiter string, trimmed.
  Result<std::string> Until(const std::string& delimiter) {
    SkipSpace();
    size_t found = text_.find(delimiter, pos_);
    if (found == std::string::npos) {
      return Fail("expected '" + delimiter + "'");
    }
    std::string raw = text_.substr(pos_, found - pos_);
    for (char c : raw) {
      if (c == '\n') ++line_;
    }
    pos_ = found + delimiter.size();
    size_t b = raw.find_first_not_of(" \t\n");
    size_t e = raw.find_last_not_of(" \t\n");
    if (b == std::string::npos) return Fail("empty segment");
    return raw.substr(b, e - b + 1);
  }

  Status Fail(const std::string& what) const {
    return Status::ParseError("opp schema line " + std::to_string(line_) +
                              ": " + what);
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Status LoadOppSchema(const std::string& source, const OppBindings& bindings,
                     Schema* schema) {
  Scanner scan(source);
  while (!scan.AtEnd()) {
    // class header: ['persistent'] 'class' Name [':' ['public'] Base] '{'
    std::string keyword = scan.Ident();
    if (keyword == "persistent") keyword = scan.Ident();
    if (keyword != "class") {
      return scan.Fail("expected 'class', got '" + keyword + "'");
    }
    std::string class_name = scan.Ident();
    if (class_name.empty()) return scan.Fail("expected class name");
    std::string base_name;
    if (scan.Consume(':')) {
      base_name = scan.Ident();
      if (base_name == "public") base_name = scan.Ident();
      if (base_name.empty()) return scan.Fail("expected base class name");
    }
    if (!scan.Consume('{')) return scan.Fail("expected '{'");

    auto binding = bindings.classes_.find(class_name);
    if (binding == bindings.classes_.end()) {
      return scan.Fail("class '" + class_name +
                       "' has no C++ binding (OppBindings::Class)");
    }
    auto ops = binding->second.declare(schema, base_name);
    if (!ops.ok()) return ops.status();

    // members until '}'
    while (!scan.Consume('}')) {
      std::string member = scan.Ident();
      if (member == "event") {
        // eventdecl (',' eventdecl)* ';'
        while (true) {
          std::string first = scan.Ident();
          if (first.empty()) return scan.Fail("expected event name");
          std::string spec = first;
          if (first == "before" || first == "after") {
            std::string target = scan.Ident();
            if (target.empty()) {
              return scan.Fail("expected name after '" + first + "'");
            }
            spec = first + " " + target;
          }
          ops->add_event(spec);
          if (scan.Consume(';')) break;
          if (!scan.Consume(',')) {
            return scan.Fail("expected ',' or ';' in event declaration");
          }
        }
      } else if (member == "trigger") {
        std::string trigger_name = scan.Ident();
        if (trigger_name.empty()) return scan.Fail("expected trigger name");
        if (scan.Consume('(')) {
          if (!scan.Consume(')')) {
            return scan.Fail("trigger parameter lists are bound in C++; "
                             "write '()'");
          }
        }
        if (!scan.Consume(':')) return scan.Fail("expected ':'");

        // Optional mode keywords, then the event expression up to '==>'.
        auto expr = scan.Until("==>");
        if (!expr.ok()) return expr.status();
        std::string expr_text = std::move(expr).value();
        bool perpetual = false;
        CouplingMode mode = CouplingMode::kImmediate;
        bool more = true;
        while (more) {
          more = false;
          auto strip = [&](const std::string& prefix) {
            if (expr_text.rfind(prefix + " ", 0) == 0 ||
                expr_text.rfind(prefix + "\t", 0) == 0) {
              expr_text = expr_text.substr(prefix.size() + 1);
              size_t b = expr_text.find_first_not_of(" \t\n");
              expr_text = b == std::string::npos ? "" : expr_text.substr(b);
              return true;
            }
            return false;
          };
          if (strip("perpetual")) {
            perpetual = true;
            more = true;
          } else if (strip("end")) {
            mode = CouplingMode::kDeferred;
            more = true;
          } else if (strip("!dependent")) {
            mode = CouplingMode::kIndependent;
            more = true;
          } else if (strip("dependent")) {
            mode = CouplingMode::kDependent;
            more = true;
          }
        }
        if (expr_text.empty()) return scan.Fail("empty event expression");

        std::string action_name = scan.Ident();
        if (action_name.empty()) {
          return scan.Fail("expected action name after '==>'");
        }
        if (!scan.Consume(';')) return scan.Fail("expected ';'");
        Status st = ops->add_trigger(trigger_name, expr_text, mode,
                                     perpetual, action_name);
        if (!st.ok()) {
          return scan.Fail(st.message());
        }
      } else {
        return scan.Fail("expected 'event', 'trigger', or '}', got '" +
                         member + "'");
      }
    }
    scan.Consume(';');  // optional trailing ';' after '}'
  }
  return Status::OK();
}

}  // namespace ode
