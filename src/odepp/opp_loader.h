#ifndef ODE_ODEPP_OPP_LOADER_H_
#define ODE_ODEPP_OPP_LOADER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "odepp/schema.h"

namespace ode {

namespace opp_internal {

/// Type-erased handle to a declared class, used by the loader.
struct ClassOps {
  std::function<void(const std::string& spec)> add_event;
  std::function<Status(const std::string& trigger_name,
                       const std::string& expr_text, CouplingMode mode,
                       bool perpetual, const std::string& action_name)>
      add_trigger;
};

}  // namespace opp_internal

/// A miniature O++ front end: class/event/trigger declarations are
/// written in O++-flavored *text* and loaded into a Schema, with the
/// parts that are C++ code in real O++ — mask predicates and trigger
/// actions — bound by name through an OppBindings registry.
///
///   persistent class CredCard {
///     event after Buy, after PayBill, BigBuy;
///     trigger DenyCredit : perpetual
///         after Buy & (currBal>credLim) ==> deny_credit;
///     trigger AutoRaiseLimit :
///         relative((after Buy & MoreCred()), after PayBill)
///         ==> raise_limit;
///   };
///
///   OppBindings bindings;
///   bindings.Class<CredCard>("CredCard");
///   bindings.Mask<CredCard>("CredCard", "(currBal>credLim)", ...);
///   bindings.Action<CredCard>("CredCard", "deny_credit", ...);
///   ...
///   Schema schema;
///   Status st = LoadOppSchema(source, bindings, &schema);
///   st = schema.Freeze();
///
/// Coupling keywords before the event expression: optional `perpetual`,
/// then optionally one of `end`, `dependent`, `!dependent` (immediate is
/// the unannotated default, as in the paper's examples). `// comments`
/// run to end of line. Method registration (for Invoke's event posting)
/// still happens in C++ via bindings.Method, since member-function
/// pointers cannot come from text.
class OppBindings {
 public:
  OppBindings() = default;

  OppBindings(const OppBindings&) = delete;
  OppBindings& operator=(const OppBindings&) = delete;

  /// Registers the C++ type implementing a class named in the source.
  template <OdeSerializable T>
  OppBindings& Class(const std::string& class_name);

  /// As Class, for a class that derives (in both the source and C++)
  /// from an already-bound base.
  template <OdeSerializable T, typename Base>
  OppBindings& Class(const std::string& class_name);

  /// Binds a mask key as written in event expressions.
  template <typename T>
  OppBindings& Mask(const std::string& class_name, std::string key,
                    std::function<Result<bool>(const T&, MaskEvalContext&)> fn);

  /// Binds a trigger action name (the identifier after `==>`).
  template <typename T>
  OppBindings& Action(const std::string& class_name, std::string name,
                      std::function<Status(T&, TriggerFireContext&)> fn);

  /// Binds a member function so Invoke posts its before/after events.
  template <typename T, typename R, typename... A>
  OppBindings& Method(const std::string& class_name, std::string name,
                      R (T::*fn)(A...));

 private:
  friend Status LoadOppSchema(const std::string& source,
                              const OppBindings& bindings, Schema* schema);

  struct ClassBinding {
    // Declares the class (with its bound masks and methods) into the
    // schema, given the base name the SOURCE specified ("" for none).
    std::function<Result<opp_internal::ClassOps>(Schema*,
                                                 const std::string& base)>
        declare;
  };

  std::map<std::string, ClassBinding> classes_;
  // Typed per-class mask/action/method registries (TypedBinding<T>).
  std::map<std::string, std::shared_ptr<void>> typed_slots_;
};

/// Parses the O++-style source and populates `schema` (do not Freeze it
/// beforehand). Unknown classes, action names, masks, and syntax errors
/// are reported with line numbers.
Status LoadOppSchema(const std::string& source, const OppBindings& bindings,
                     Schema* schema);

// ---------------------------------------------------------------- inline

namespace opp_internal {

/// Per-class typed registries the templates below fill in; stored via
/// shared_ptr inside the declare closure.
template <typename T>
struct TypedBinding {
  std::map<std::string,
           std::function<Result<bool>(const T&, MaskEvalContext&)>>
      masks;
  std::map<std::string, std::function<Status(T&, TriggerFireContext&)>>
      actions;
  std::vector<std::function<void(ClassDef<T>&)>> methods;
};

template <typename T>
ClassOps MakeOps(ClassDef<T> def,
                 std::shared_ptr<TypedBinding<T>> typed) {
  ClassOps ops;
  // ClassDef is a thin (Schema*, record*) pair: copy it into the
  // closures.
  auto def_ptr = std::make_shared<ClassDef<T>>(def);
  for (const auto& m : typed->methods) m(*def_ptr);
  for (const auto& [key, fn] : typed->masks) def_ptr->Mask(key, fn);
  ops.add_event = [def_ptr](const std::string& spec) {
    def_ptr->Event(spec);
  };
  ops.add_trigger = [def_ptr, typed](const std::string& trigger_name,
                                     const std::string& expr_text,
                                     CouplingMode mode, bool perpetual,
                                     const std::string& action_name) {
    auto it = typed->actions.find(action_name);
    if (it == typed->actions.end()) {
      return Status::InvalidArgument("trigger " + trigger_name +
                                     ": no bound action named '" +
                                     action_name + "'");
    }
    def_ptr->Trigger(trigger_name, expr_text, it->second, mode, perpetual);
    return Status::OK();
  };
  return ops;
}

}  // namespace opp_internal

template <OdeSerializable T>
OppBindings& OppBindings::Class(const std::string& class_name) {
  auto typed = std::make_shared<opp_internal::TypedBinding<T>>();
  ClassBinding binding;
  binding.declare = [class_name, typed](
                        Schema* schema,
                        const std::string& base) -> Result<opp_internal::ClassOps> {
    if (!base.empty()) {
      return Status::InvalidArgument(
          "class " + class_name +
          " was bound without a base but the source declares one");
    }
    return opp_internal::MakeOps<T>(schema->DeclareClass<T>(class_name),
                                    typed);
  };
  classes_[class_name] = std::move(binding);
  // Remember the typed registry so Mask/Action/Method can find it: the
  // declare closure holds it; Mask etc. re-derive it via the map below.
  typed_slots_[class_name] = typed;
  return *this;
}

template <OdeSerializable T, typename Base>
OppBindings& OppBindings::Class(const std::string& class_name) {
  auto typed = std::make_shared<opp_internal::TypedBinding<T>>();
  ClassBinding binding;
  binding.declare = [class_name, typed](
                        Schema* schema,
                        const std::string& base) -> Result<opp_internal::ClassOps> {
    if (base.empty()) {
      return Status::InvalidArgument("class " + class_name +
                                     " was bound with a base but the "
                                     "source declares none");
    }
    return opp_internal::MakeOps<T>(
        schema->DeclareClass<T, Base>(class_name, base), typed);
  };
  classes_[class_name] = std::move(binding);
  typed_slots_[class_name] = typed;
  return *this;
}

template <typename T>
OppBindings& OppBindings::Mask(
    const std::string& class_name, std::string key,
    std::function<Result<bool>(const T&, MaskEvalContext&)> fn) {
  auto typed = std::static_pointer_cast<opp_internal::TypedBinding<T>>(
      typed_slots_.at(class_name));
  typed->masks[std::move(key)] = std::move(fn);
  return *this;
}

template <typename T>
OppBindings& OppBindings::Action(
    const std::string& class_name, std::string name,
    std::function<Status(T&, TriggerFireContext&)> fn) {
  auto typed = std::static_pointer_cast<opp_internal::TypedBinding<T>>(
      typed_slots_.at(class_name));
  typed->actions[std::move(name)] = std::move(fn);
  return *this;
}

template <typename T, typename R, typename... A>
OppBindings& OppBindings::Method(const std::string& class_name,
                                 std::string name, R (T::*fn)(A...)) {
  auto typed = std::static_pointer_cast<opp_internal::TypedBinding<T>>(
      typed_slots_.at(class_name));
  typed->methods.push_back([name, fn](ClassDef<T>& def) {
    def.Method(name, fn);
  });
  return *this;
}

}  // namespace ode

#endif  // ODE_ODEPP_OPP_LOADER_H_
