#ifndef ODE_ODEPP_SESSION_H_
#define ODE_ODEPP_SESSION_H_

#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "objstore/database.h"
#include "odepp/params.h"
#include "odepp/pref.h"
#include "odepp/pset.h"
#include "odepp/schema.h"
#include "trigger/provenance.h"
#include "trigger/trigger_manager.h"

namespace ode {

/// Argument types whose values can travel to masks as event attributes
/// (paper §8 future work). Non-packable arguments simply produce empty
/// event_args; the method call itself is unaffected.
template <typename T>
concept PackableParam = requires(Encoder& enc, const T& value) {
  params_internal::PutOne(enc, value);
};

/// The application-facing handle to an Ode database: transactions, typed
/// persistent objects, member-function invocation with event posting, and
/// trigger activation. One Session corresponds to one running O++ program
/// connected to one database.
///
/// Session::Invoke is this library's equivalent of the O++ compiler's
/// *WithPost wrapper functions (§5.3): it loads the object, posts the
/// declared `before` event, calls the member function, stores the object
/// back, and posts the `after` event. Plain C++ calls on volatile objects
/// never touch this machinery, preserving design goals 3–4 (volatile
/// objects pay nothing for triggers).
///
/// Transaction lifetime: if a trigger action executes tabort, the whole
/// transaction is rolled back and the triggering call returns
/// kTransactionAborted — the Transaction* is dead at that point and must
/// not be used again.
class Session {
 public:
  struct Options {
    /// Automatically add each new object to a cluster named after its
    /// class (enables Session::Cluster iteration). Benchmarks that
    /// allocate many objects may turn this off.
    bool auto_cluster = true;
    /// Bucket fanout of the persistent object->triggers index when first
    /// created in a database (see bench_ablation).
    size_t trigger_index_buckets = 64;
    /// Max decoded TriggerStates cached per transaction (0 disables the
    /// cache and restores per-event read/decode/encode/write). See
    /// TriggerManager::Options::state_cache_capacity.
    size_t trigger_state_cache_entries = 1024;
    /// Max index lookups cached per transaction (0 disables). See
    /// TriggerManager::Options::lookup_cache_capacity.
    size_t trigger_lookup_cache_entries = 1024;
    /// Lock-stripe count for the trigger manager's shared maps. See
    /// TriggerManager::Options::lock_stripes.
    size_t trigger_lock_stripes = 16;
    /// Collect counters/gauges/latency histograms in the database-wide
    /// MetricsRegistry. Off turns every instrument into a cheap branch
    /// (see bench_posting_overhead).
    bool enable_metrics = true;
    /// Capacity of the per-session trigger trace ring (0 = tracing off).
    /// When on, every trigger lifecycle step (event posted, FSM move,
    /// mask verdict, accept, action, write-back, abort discard) is
    /// recorded; read it back with DumpTrace().
    size_t trigger_trace_capacity = 0;
    /// Capacity of the database-wide transaction span ring (the flight
    /// recorder; 0 turns span tracing off entirely). Unlike the trigger
    /// trace ring this is ON by default — sampled spans cover the whole
    /// transaction lifecycle (begin, locks, postings, FSM moves, WAL
    /// append, the shared group-commit fsync, page apply, ack/abort) and
    /// are auto-dumped to `<path>.flight.json` when the store wedges or
    /// enters WAL-salvage mode. See DumpTimeline / ExportChromeTrace.
    size_t trace_span_capacity = 4096;
    /// Record spans for 1 of every N transactions (power of two
    /// recommended; 1 = trace every transaction). Sampling keeps the
    /// always-on recorder's overhead under the 5% budget measured by
    /// bench_posting_overhead and bench_commit_throughput.
    uint32_t trace_sample_every_n_txns = 32;
    /// Disk databases: retries per transient (kIOError) storage failure
    /// before giving up (0 = fail fast). Retried operations increment
    /// ode_io_retries_total; giving up increments
    /// ode_io_retry_exhausted_total.
    uint32_t io_retry_attempts = 0;
    /// Disk databases: backoff before the first I/O retry; doubles per
    /// retry.
    uint32_t io_retry_backoff_us = 100;
    /// Disk databases: batch concurrent committers into one WAL fsync
    /// (group commit). Off restores one fsync per committed transaction,
    /// serialized on the WAL-order lock. See docs/storage.md.
    bool group_commit = true;
    /// Disk databases: upper bound on transactions folded into one
    /// group-commit batch.
    size_t commit_batch_max_txns = 64;
    /// Disk databases: how long a commit leader lingers for followers to
    /// join its batch before fsyncing (0 = never wait; batches still
    /// form from committers that queue up behind an in-flight fsync).
    uint32_t commit_batch_max_wait_us = 0;
    /// Disk databases: stamp a CRC32C on every page written and verify
    /// it on every page read back from disk (silent-corruption defense;
    /// see docs/storage.md). Off is a benchmark-only knob, like
    /// sync_commits: structural validation still runs, but bit rot on
    /// the medium goes undetected.
    bool verify_page_checksums = true;
    /// Master switch for the trigger-runtime containment layer: cascade
    /// budgets, poisoned-trigger quarantine, deadlock-abort retry, and
    /// !dependent admission backpressure (see docs/architecture.md,
    /// "Trigger runtime guardrails"). Off restores the pre-containment
    /// runtime: unbounded detached cascades, warn-and-drop on system-
    /// transaction failure.
    bool trigger_containment = true;
    /// Max trigger-cascade depth per root transaction: immediate
    /// re-posting recursion AND the chain of detached system
    /// transactions each count one level. Exceeding it cuts the cascade
    /// with kCascadeOverflow (immediate) or diverts the batch to the
    /// dead-letter ring (detached).
    size_t max_cascade_depth = 32;
    /// Max trigger actions charged to one root transaction's cascade
    /// across every detached link. 0 = unlimited actions (depth still
    /// bounds the chain).
    size_t max_cascade_actions = 4096;
    /// Consecutive terminal action failures (action error, tabort,
    /// cascade overflow, watchdog timeout — retryable deadlock/timeout
    /// aborts never count) before a trigger is quarantined:
    /// auto-deactivated, recorded in the persistent quarantine table,
    /// and re-armable only by an explicit Activate. 0 disables
    /// quarantine.
    uint32_t trigger_failure_threshold = 3;
    /// Watchdog budget per trigger action, microseconds (0 = no watchdog).
    /// Actions cannot be preempted mid-flight; an overrun is charged to
    /// the trigger's failure window after the fact.
    uint64_t trigger_action_timeout_us = 0;
    /// Attempts per detached system-transaction batch when it aborts
    /// with kDeadlock/kLockTimeout (capped exponential backoff with
    /// jitter between attempts). Exhaustion sends the batch to the
    /// dead-letter ring.
    uint32_t action_retry_attempts = 3;
    /// Backoff before the first retry; doubles per attempt, capped at
    /// 100ms, plus up to 50% jitter.
    uint32_t action_retry_backoff_us = 100;
    /// Entries kept in the persistent dead-letter ring (oldest evicted
    /// first). 0 disables the ring: diverted/shed/exhausted firings are
    /// dropped after the warn log.
    size_t dead_letter_capacity = 64;
    /// Admission high-water mark: while this many detached system
    /// transactions are in flight, new !dependent batches are shed to
    /// the dead-letter ring instead of piling onto an overloaded store.
    /// Dependent batches are never shed. 0 disables shedding.
    size_t max_inflight_system_actions = 8;
  };

  /// Rejects incoherent option combinations (kInvalidArgument naming the
  /// offending field) before any storage is touched. Open and OpenWith
  /// call this; it is public so tools can pre-validate configs.
  static Status ValidateOptions(const Options& options);

  /// Opens a database using the given (frozen) schema.
  static Result<std::unique_ptr<Session>> Open(StorageKind kind,
                                               const std::string& path,
                                               Schema* schema);
  static Result<std::unique_ptr<Session>> Open(StorageKind kind,
                                               const std::string& path,
                                               Schema* schema,
                                               Options options);

  /// As Open, with a caller-constructed storage manager.
  static Result<std::unique_ptr<Session>> OpenWith(
      std::unique_ptr<StorageManager> store, Schema* schema,
      Options options);

  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  Status Close();

  Database* db() { return db_.get(); }
  TriggerManager* triggers() { return triggers_.get(); }
  Schema* schema() { return schema_; }

  // --- observability ---

  /// The database-wide metrics registry: trigger, storage, transaction,
  /// and lock metrics all report here (see docs/observability.md).
  MetricsRegistry* metrics() { return db_->metrics(); }

  /// Point-in-time copy of every metric. Two snapshots taken around a
  /// workload can be Delta()'d to isolate that workload's activity.
  ode::MetricsSnapshot MetricsSnapshot() const;

  /// All metrics rendered in Prometheus-style text exposition format,
  /// with percentile summary comments for histograms.
  std::string DumpMetricsText() const;

  /// Human-readable dump of the trigger trace ring (oldest first).
  /// Returns a note instead if Options::trigger_trace_capacity was 0.
  std::string DumpTrace() const;

  /// The database-wide span tracer (the flight recorder). Null never:
  /// the tracer always exists, though Options::trace_span_capacity = 0
  /// disables recording.
  Tracer* tracer() { return db_->tracer(); }

  /// Chronological rendering of every span recorded for `txn` — for a
  /// committed disk transaction: begin, lock acquires, event postings
  /// with their FSM transitions, WAL append, the group-commit fsync
  /// batch it rode (with the batch ticket id), page apply, and the
  /// commit ack. The transaction must have been sampled (see
  /// Options::trace_sample_every_n_txns) and still be in the span ring.
  std::string DumpTimeline(TxnId txn) const;

  /// Reconstructs why trigger `id` did (or did not) fire from the span
  /// ring: the chain of events that advanced its machine, each with the
  /// prior state, the state entered, the mask verdicts consulted, and
  /// the parameter bindings — the paper's relative(a,b,c) causal chain.
  /// kNotFound if the ring holds no FSM activity for the trigger.
  Result<FiringExplanation> ExplainFiring(TriggerId id) const;

  /// Every recorded span as Chrome trace_event JSON — load the string
  /// (saved to a file) in chrome://tracing or https://ui.perfetto.dev.
  /// Tracks are keyed by transaction id.
  std::string ExportChromeTrace() const;

  /// Sweeps the underlying store for silent corruption: verifies every
  /// page checksum, repairs bad pages from WAL redo where possible, and
  /// quarantines the rest (see docs/storage.md, "Silent corruption").
  /// Blocks commits for the duration; a clean() report means every
  /// committed object is readable and intact. Main-memory databases
  /// have no durable medium and always report clean.
  Result<ScrubReport> VerifyIntegrity();

  /// The persistent quarantine table: triggers auto-deactivated after
  /// Options::trigger_failure_threshold consecutive terminal failures,
  /// with the failure count and last reason. Re-arm one by calling
  /// Activate on the same object/trigger again. Runs its own read-only
  /// transaction.
  Result<std::vector<TriggerManager::QuarantinedTrigger>>
  QuarantinedTriggers();

  /// The persistent dead-letter ring (oldest first): trigger firings
  /// that were diverted (quarantined trigger), shed (admission
  /// backpressure), depth-cut, or dropped after retry exhaustion, with
  /// the reason. Bounded by Options::dead_letter_capacity.
  Result<std::vector<TriggerManager::DeadLetter>> DeadLetters();

  // --- transactions ---

  Result<Transaction*> Begin();
  /// May return kTransactionAborted if a deferred trigger aborted the
  /// transaction during commit processing.
  Status Commit(Transaction* txn);
  /// The O++ tabort: rolls back and posts `before tabort` events.
  Status Abort(Transaction* txn);

  /// Convenience: Begin, run `fn`, Commit on OK / Abort on error. If `fn`
  /// returns kTransactionAborted the transaction was already rolled back.
  Status WithTransaction(const std::function<Status(Transaction*)>& fn);

  // --- typed persistent objects ---

  /// pnew: creates a persistent object.
  template <OdeSerializable T>
  Result<PRef<T>> New(Transaction* txn, const T& value);

  /// Reads the object's value. If the stored object is of a derived
  /// class, the base-class view is returned.
  template <OdeSerializable T>
  Result<T> Load(Transaction* txn, PRef<T> ref);

  /// Overwrites the object. Rejected (to prevent slicing) if the stored
  /// object's dynamic class is not exactly T.
  template <OdeSerializable T>
  Status Store(Transaction* txn, PRef<T> ref, const T& value);

  /// pdelete: frees the object and deactivates its remaining triggers.
  template <OdeSerializable T>
  Status Free(Transaction* txn, PRef<T> ref);

  /// Calls a registered member function through a persistent ref,
  /// posting its declared before/after events (§5.3). Returns Result<R>
  /// (or Status for void methods); kTransactionAborted means a fired
  /// trigger aborted the transaction.
  template <typename Obj, typename T, typename R, typename... A,
            typename... Args>
  auto Invoke(Transaction* txn, PRef<Obj> ref, R (T::*fn)(A...),
              Args&&... args)
      -> std::conditional_t<std::is_void_v<R>, Status, Result<R>>;

  /// Const-method variant: shared lock, no store-back.
  template <typename Obj, typename T, typename R, typename... A,
            typename... Args>
  auto Invoke(Transaction* txn, PRef<Obj> ref, R (T::*fn)(A...) const,
              Args&&... args)
      -> std::conditional_t<std::is_void_v<R>, Status, Result<R>>;

  // --- events and triggers ---

  /// Posts a user-defined event (declared with ClassDef::Event) to the
  /// object. The paper: "user-defined events must be explicitly posted
  /// by the application."
  template <typename T>
  Status PostUserEvent(Transaction* txn, PRef<T> ref,
                       const std::string& event_name);

  /// Activates a trigger on an object; `params` from PackParams.
  template <typename T>
  Result<TriggerId> Activate(Transaction* txn, PRef<T> ref,
                             const std::string& trigger_name,
                             std::vector<char> params = {});

  /// Inter-object trigger (§8): one machine fed by the events of all the
  /// given objects; the first is the primary anchor typed actions see.
  template <typename T>
  Result<TriggerId> ActivateGroup(Transaction* txn,
                                  const std::vector<PRef<T>>& refs,
                                  const std::string& trigger_name,
                                  std::vector<char> params = {});

  /// Transient "local rule" (§8): lives only in this transaction, needs
  /// no persistent storage and no write locks, and is deallocated at end
  /// of transaction.
  template <typename T>
  Result<uint64_t> ActivateLocal(Transaction* txn, PRef<T> ref,
                                 const std::string& trigger_name,
                                 std::vector<char> params = {});

  Status DeactivateLocal(Transaction* txn, uint64_t local_id);

  Status Deactivate(Transaction* txn, TriggerId id);
  bool IsTriggerActive(Transaction* txn, TriggerId id);

  // --- timed triggers (§8 future work: "the passage of time can be
  // used to produce events") ---
  //
  // The session keeps a persistent logical clock and schedule. A
  // scheduled user event is posted to its object when AdvanceTime moves
  // the clock past its due time; trigger machinery then runs normally.

  /// Current logical time (0 in a fresh database).
  Result<int64_t> Now(Transaction* txn);

  /// Schedules `event_name` (a declared user event of the object's
  /// class) to be posted at logical time `at`.
  template <typename T>
  Status ScheduleUserEvent(Transaction* txn, PRef<T> ref,
                           const std::string& event_name, int64_t at);

  /// Advances the clock to `to`, posting every due scheduled event in
  /// time order. Fired triggers run in this transaction.
  Status AdvanceTime(Transaction* txn, int64_t to);

  /// All members of class T's extent cluster (objects created while
  /// auto_cluster was on).
  template <typename T>
  Result<std::vector<PRef<T>>> Cluster(Transaction* txn);

  /// Iterates class T's cluster, returning the refs whose loaded values
  /// satisfy `predicate` — the O++ "for x in Cluster suchthat(...)" idiom.
  template <typename T>
  Result<std::vector<PRef<T>>> Select(
      Transaction* txn, const std::function<bool(const T&)>& predicate);

  // --- persistent sets (O++ §2: "defining and manipulating sets") ---

  template <typename T>
  Result<PSet<T>> NewSet(Transaction* txn);

  /// Adds a member; kAlreadyExists if present.
  template <typename T>
  Status SetInsert(Transaction* txn, PSet<T> set, PRef<T> member);

  /// Removes a member; kNotFound if absent.
  template <typename T>
  Status SetErase(Transaction* txn, PSet<T> set, PRef<T> member);

  template <typename T>
  Result<bool> SetContains(Transaction* txn, PSet<T> set, PRef<T> member);

  template <typename T>
  Result<std::vector<PRef<T>>> SetMembers(Transaction* txn, PSet<T> set);

  template <typename T>
  Result<uint64_t> SetSize(Transaction* txn, PSet<T> set);

  // --- versioned objects (O++ §2: "persistent and versioned objects") ---

  /// Creates a new version of the object: a fresh persistent object
  /// initialized with the current value and linked to its parent. The
  /// base version is unchanged (and keeps its triggers); the new version
  /// starts with none.
  template <OdeSerializable T>
  Result<PRef<T>> NewVersion(Transaction* txn, PRef<T> base);

  /// The chain ref, parent, grandparent, ... (oldest last).
  template <typename T>
  Result<std::vector<PRef<T>>> VersionChain(Transaction* txn, PRef<T> ref);

 private:
  Session(std::unique_ptr<Database> db, Schema* schema, Options options);

  Result<const ClassRecord*> RecordFor(const std::type_info& type) const;

  /// Posts a before/after member event if declared; on tabort from an
  /// immediate trigger, auto-aborts the transaction when not nested
  /// inside another trigger action.
  Status PostMemberEvent(Transaction* txn, Oid oid,
                         const TypeDescriptor* type,
                         const std::string& event_name, Slice event_args);

  /// Wraps a status: on kTransactionAborted at the outermost level,
  /// aborts the transaction (the O++ tabort unwind).
  Status MaybeAutoAbort(Transaction* txn, Status st);

  /// Reads the stored class name of an object and checks it is `rec` or
  /// a subtype; returns the actual record.
  Result<const ClassRecord*> CheckStoredType(Transaction* txn, Oid oid,
                                             const ClassRecord* rec);

  // Untyped set plumbing (typed wrappers below).
  Result<Oid> NewSetImpl(Transaction* txn);
  Status SetInsertImpl(Transaction* txn, Oid set, Oid member);
  Status SetEraseImpl(Transaction* txn, Oid set, Oid member);
  Result<bool> SetContainsImpl(Transaction* txn, Oid set, Oid member);
  Result<std::vector<Oid>> SetMembersImpl(Transaction* txn, Oid set);

  struct TimerEntry {
    int64_t time = 0;
    Oid obj;
    std::string event_name;
  };
  struct TimerState {
    int64_t now = 0;
    std::vector<TimerEntry> entries;
  };
  Result<TimerState> LoadTimers(Transaction* txn, Oid* holder);
  Status StoreTimers(Transaction* txn, Oid holder, const TimerState& state);
  Status ScheduleUserEventImpl(Transaction* txn, Oid obj,
                               const std::string& event_name, int64_t at);

  template <typename MF>
  static std::string FindMethodName(const ClassRecord* rec, MF fn) {
    for (const ClassRecord* r = rec; r != nullptr; r = r->base) {
      for (const auto& entry : r->methods) {
        if (const MF* p = std::any_cast<MF>(&entry.pointer);
            p != nullptr && *p == fn) {
          return entry.name;
        }
      }
    }
    return "";
  }

  static bool DerivesFrom(const ClassRecord* from, const ClassRecord* to) {
    for (const ClassRecord* r = from; r != nullptr; r = r->base) {
      if (r == to) return true;
    }
    return false;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<TriggerManager> triggers_;
  Schema* schema_;
  Options options_;
};

// ---------------------------------------------------------------- inline

template <OdeSerializable T>
Result<PRef<T>> Session::New(Transaction* txn, const T& value) {
  ODE_ASSIGN_OR_RETURN(const ClassRecord* rec, RecordFor(typeid(T)));
  Encoder enc;
  enc.PutString(rec->name);
  value.Encode(enc);
  ODE_ASSIGN_OR_RETURN(Oid oid, db_->NewObject(txn, Slice(enc.buffer())));
  triggers_->NoteAccess(txn, oid, rec->descriptor.get());
  if (options_.auto_cluster) {
    ODE_RETURN_NOT_OK(db_->AddToCluster(txn, rec->name, oid));
  }
  return PRef<T>(oid);
}

template <OdeSerializable T>
Result<T> Session::Load(Transaction* txn, PRef<T> ref) {
  ODE_ASSIGN_OR_RETURN(const ClassRecord* rec, RecordFor(typeid(T)));
  std::vector<char> image;
  ODE_RETURN_NOT_OK(db_->ReadObject(txn, ref.oid(), &image));
  ODE_ASSIGN_OR_RETURN(Schema::Loaded loaded,
                       schema_->DecodeImage(Slice(image)));
  if (!DerivesFrom(loaded.record, rec)) {
    return Status::InvalidArgument("object " + ref.oid().ToString() +
                                   " is a " + loaded.record->name +
                                   ", not a " + rec->name);
  }
  triggers_->NoteAccess(txn, ref.oid(), loaded.record->descriptor.get());
  const T* view = static_cast<const T*>(
      Schema::UpcastTo(loaded.object->self(), loaded.record, rec));
  return T(*view);
}

template <OdeSerializable T>
Status Session::Store(Transaction* txn, PRef<T> ref, const T& value) {
  ODE_ASSIGN_OR_RETURN(const ClassRecord* rec, RecordFor(typeid(T)));
  std::vector<char> image;
  ODE_RETURN_NOT_OK(db_->ReadObjectForUpdate(txn, ref.oid(), &image));
  Decoder dec(image);
  std::string stored_class;
  ODE_RETURN_NOT_OK(dec.GetString(&stored_class));
  if (stored_class != rec->name) {
    return Status::InvalidArgument(
        "store through " + rec->name + "-typed ref would slice a stored " +
        stored_class + " object; use Invoke or the exact type");
  }
  triggers_->NoteAccess(txn, ref.oid(), rec->descriptor.get());
  Encoder enc;
  enc.PutString(rec->name);
  value.Encode(enc);
  return db_->WriteObject(txn, ref.oid(), Slice(enc.buffer()));
}

template <OdeSerializable T>
Status Session::Free(Transaction* txn, PRef<T> ref) {
  ODE_ASSIGN_OR_RETURN(const ClassRecord* rec, RecordFor(typeid(T)));
  std::vector<char> image;
  ODE_RETURN_NOT_OK(db_->ReadObjectForUpdate(txn, ref.oid(), &image));
  Decoder dec(image);
  std::string stored_class;
  ODE_RETURN_NOT_OK(dec.GetString(&stored_class));
  const ClassRecord* actual = schema_->RecordByName(stored_class);
  if (actual == nullptr || !DerivesFrom(actual, rec)) {
    return Status::InvalidArgument("object is not a " + rec->name);
  }
  if (options_.auto_cluster) {
    ODE_RETURN_NOT_OK(db_->RemoveFromCluster(txn, actual->name, ref.oid()));
  }
  // Deactivate any triggers still anchored at the object.
  if (triggers_->ActiveCount(txn, ref.oid()) > 0) {
    ODE_RETURN_NOT_OK(triggers_->DeactivateAll(txn, ref.oid()));
  }
  return db_->FreeObject(txn, ref.oid());
}

template <typename Obj, typename T, typename R, typename... A,
          typename... Args>
auto Session::Invoke(Transaction* txn, PRef<Obj> ref, R (T::*fn)(A...),
                     Args&&... args)
    -> std::conditional_t<std::is_void_v<R>, Status, Result<R>> {
  static_assert(std::is_base_of_v<T, Obj>,
                "method's class must be Obj or one of its bases");
  using Ret = std::conditional_t<std::is_void_v<R>, Status, Result<R>>;
  auto rec_result = RecordFor(typeid(T));
  if (!rec_result.ok()) return Ret(rec_result.status());
  const ClassRecord* rec = rec_result.value();
  std::string method = FindMethodName(rec, fn);

  std::vector<char> image;
  Status st = db_->ReadObjectForUpdate(txn, ref.oid(), &image);
  if (!st.ok()) return Ret(st);
  auto loaded_result = schema_->DecodeImage(Slice(image));
  if (!loaded_result.ok()) return Ret(loaded_result.status());
  Schema::Loaded loaded = std::move(loaded_result).value();
  if (!DerivesFrom(loaded.record, rec)) {
    return Ret(Status::InvalidArgument("object is not a " + rec->name));
  }
  const TypeDescriptor* type = loaded.record->descriptor.get();
  triggers_->NoteAccess(txn, ref.oid(), type);

  // Event attributes (§8): forward encodable invocation arguments so
  // masks can inspect them.
  std::vector<char> event_args;
  if constexpr ((PackableParam<std::decay_t<Args>> && ...)) {
    event_args = PackParams(args...);
  }

  if (!method.empty() &&
      type->FindEvent("before " + method) != nullptr) {
    st = PostMemberEvent(txn, ref.oid(), type, "before " + method,
                         Slice(event_args));
    if (!st.ok()) return Ret(st);
    // A trigger fired by the before event may have modified the object;
    // reload so the call and the store-back see its writes.
    st = db_->ReadObjectForUpdate(txn, ref.oid(), &image);
    if (!st.ok()) return Ret(st);
    auto reloaded = schema_->DecodeImage(Slice(image));
    if (!reloaded.ok()) return Ret(reloaded.status());
    loaded = std::move(reloaded).value();
  }

  T* obj = static_cast<T*>(
      Schema::UpcastTo(loaded.object->self(), loaded.record, rec));
  if constexpr (std::is_void_v<R>) {
    (obj->*fn)(std::forward<Args>(args)...);
    std::vector<char> updated = Schema::EncodeImage(loaded.record,
                                                    *loaded.object);
    st = db_->WriteObject(txn, ref.oid(), Slice(updated));
    if (!st.ok()) return Ret(st);
    if (!method.empty()) {
      st = PostMemberEvent(txn, ref.oid(), type, "after " + method,
                           Slice(event_args));
      if (!st.ok()) return Ret(st);
    }
    return Status::OK();
  } else {
    R result = (obj->*fn)(std::forward<Args>(args)...);
    std::vector<char> updated = Schema::EncodeImage(loaded.record,
                                                    *loaded.object);
    st = db_->WriteObject(txn, ref.oid(), Slice(updated));
    if (!st.ok()) return Ret(st);
    if (!method.empty()) {
      st = PostMemberEvent(txn, ref.oid(), type, "after " + method,
                           Slice(event_args));
      if (!st.ok()) return Ret(st);
    }
    return Ret(std::move(result));
  }
}

template <typename Obj, typename T, typename R, typename... A,
          typename... Args>
auto Session::Invoke(Transaction* txn, PRef<Obj> ref,
                     R (T::*fn)(A...) const, Args&&... args)
    -> std::conditional_t<std::is_void_v<R>, Status, Result<R>> {
  static_assert(std::is_base_of_v<T, Obj>,
                "method's class must be Obj or one of its bases");
  using Ret = std::conditional_t<std::is_void_v<R>, Status, Result<R>>;
  auto rec_result = RecordFor(typeid(T));
  if (!rec_result.ok()) return Ret(rec_result.status());
  const ClassRecord* rec = rec_result.value();
  std::string method = FindMethodName(rec, fn);

  std::vector<char> image;
  Status st = db_->ReadObject(txn, ref.oid(), &image);
  if (!st.ok()) return Ret(st);
  auto loaded_result = schema_->DecodeImage(Slice(image));
  if (!loaded_result.ok()) return Ret(loaded_result.status());
  Schema::Loaded loaded = std::move(loaded_result).value();
  if (!DerivesFrom(loaded.record, rec)) {
    return Ret(Status::InvalidArgument("object is not a " + rec->name));
  }
  const TypeDescriptor* type = loaded.record->descriptor.get();
  triggers_->NoteAccess(txn, ref.oid(), type);

  std::vector<char> event_args;
  if constexpr ((PackableParam<std::decay_t<Args>> && ...)) {
    event_args = PackParams(args...);
  }

  if (!method.empty() &&
      type->FindEvent("before " + method) != nullptr) {
    st = PostMemberEvent(txn, ref.oid(), type, "before " + method,
                         Slice(event_args));
    if (!st.ok()) return Ret(st);
    // Reload: a before-event trigger may have modified the object.
    st = db_->ReadObject(txn, ref.oid(), &image);
    if (!st.ok()) return Ret(st);
    auto reloaded = schema_->DecodeImage(Slice(image));
    if (!reloaded.ok()) return Ret(reloaded.status());
    loaded = std::move(reloaded).value();
  }
  const T* obj = static_cast<const T*>(
      Schema::UpcastTo(loaded.object->self(), loaded.record, rec));
  if constexpr (std::is_void_v<R>) {
    (obj->*fn)(std::forward<Args>(args)...);
    if (!method.empty()) {
      st = PostMemberEvent(txn, ref.oid(), type, "after " + method,
                           Slice(event_args));
      if (!st.ok()) return Ret(st);
    }
    return Status::OK();
  } else {
    R result = (obj->*fn)(std::forward<Args>(args)...);
    if (!method.empty()) {
      st = PostMemberEvent(txn, ref.oid(), type, "after " + method,
                           Slice(event_args));
      if (!st.ok()) return Ret(st);
    }
    return Ret(std::move(result));
  }
}

template <typename T>
Status Session::PostUserEvent(Transaction* txn, PRef<T> ref,
                              const std::string& event_name) {
  ODE_ASSIGN_OR_RETURN(const ClassRecord* rec, RecordFor(typeid(T)));
  const EventDecl* decl = rec->descriptor->FindEvent(event_name);
  if (decl == nullptr || decl->kind != EventKind::kUser) {
    return Status::InvalidArgument("class " + rec->name +
                                   " declares no user event '" +
                                   event_name + "'");
  }
  triggers_->NoteAccess(txn, ref.oid(), rec->descriptor.get());
  return MaybeAutoAbort(
      txn, triggers_->PostEvent(txn, ref.oid(), rec->descriptor.get(),
                                decl->symbol));
}

template <typename T>
Result<TriggerId> Session::Activate(Transaction* txn, PRef<T> ref,
                                    const std::string& trigger_name,
                                    std::vector<char> params) {
  ODE_ASSIGN_OR_RETURN(const ClassRecord* rec, RecordFor(typeid(T)));
  return triggers_->Activate(txn, ref.oid(), rec->descriptor.get(),
                             trigger_name, Slice(params));
}

template <typename T>
Result<std::vector<PRef<T>>> Session::Cluster(Transaction* txn) {
  ODE_ASSIGN_OR_RETURN(const ClassRecord* rec, RecordFor(typeid(T)));
  ODE_ASSIGN_OR_RETURN(std::vector<Oid> oids,
                       db_->ClusterContents(txn, rec->name));
  std::vector<PRef<T>> out;
  out.reserve(oids.size());
  for (Oid oid : oids) out.push_back(PRef<T>(oid));
  return out;
}

template <typename T>
Result<TriggerId> Session::ActivateGroup(Transaction* txn,
                                         const std::vector<PRef<T>>& refs,
                                         const std::string& trigger_name,
                                         std::vector<char> params) {
  ODE_ASSIGN_OR_RETURN(const ClassRecord* rec, RecordFor(typeid(T)));
  std::vector<Oid> anchors;
  anchors.reserve(refs.size());
  for (PRef<T> ref : refs) {
    ODE_RETURN_NOT_OK(CheckStoredType(txn, ref.oid(), rec).status());
    anchors.push_back(ref.oid());
  }
  return triggers_->ActivateGroup(txn, anchors, rec->descriptor.get(),
                                  trigger_name, Slice(params));
}

template <typename T>
Result<uint64_t> Session::ActivateLocal(Transaction* txn, PRef<T> ref,
                                        const std::string& trigger_name,
                                        std::vector<char> params) {
  ODE_ASSIGN_OR_RETURN(const ClassRecord* rec, RecordFor(typeid(T)));
  return triggers_->ActivateLocal(txn, ref.oid(), rec->descriptor.get(),
                                  trigger_name, Slice(params));
}

template <typename T>
Result<std::vector<PRef<T>>> Session::Select(
    Transaction* txn, const std::function<bool(const T&)>& predicate) {
  ODE_ASSIGN_OR_RETURN(std::vector<PRef<T>> all, Cluster<T>(txn));
  std::vector<PRef<T>> out;
  for (PRef<T> ref : all) {
    ODE_ASSIGN_OR_RETURN(T value, Load(txn, ref));
    if (predicate(value)) out.push_back(ref);
  }
  return out;
}

template <typename T>
Result<PSet<T>> Session::NewSet(Transaction* txn) {
  ODE_ASSIGN_OR_RETURN(Oid oid, NewSetImpl(txn));
  return PSet<T>(oid);
}

template <typename T>
Status Session::SetInsert(Transaction* txn, PSet<T> set, PRef<T> member) {
  return SetInsertImpl(txn, set.oid(), member.oid());
}

template <typename T>
Status Session::SetErase(Transaction* txn, PSet<T> set, PRef<T> member) {
  return SetEraseImpl(txn, set.oid(), member.oid());
}

template <typename T>
Result<bool> Session::SetContains(Transaction* txn, PSet<T> set,
                                  PRef<T> member) {
  return SetContainsImpl(txn, set.oid(), member.oid());
}

template <typename T>
Result<std::vector<PRef<T>>> Session::SetMembers(Transaction* txn,
                                                 PSet<T> set) {
  ODE_ASSIGN_OR_RETURN(std::vector<Oid> oids,
                       SetMembersImpl(txn, set.oid()));
  std::vector<PRef<T>> out;
  out.reserve(oids.size());
  for (Oid oid : oids) out.push_back(PRef<T>(oid));
  return out;
}

template <typename T>
Result<uint64_t> Session::SetSize(Transaction* txn, PSet<T> set) {
  ODE_ASSIGN_OR_RETURN(std::vector<Oid> oids,
                       SetMembersImpl(txn, set.oid()));
  return static_cast<uint64_t>(oids.size());
}

template <OdeSerializable T>
Result<PRef<T>> Session::NewVersion(Transaction* txn, PRef<T> base) {
  ODE_ASSIGN_OR_RETURN(T value, Load(txn, base));
  ODE_ASSIGN_OR_RETURN(PRef<T> fresh, New(txn, value));
  ODE_RETURN_NOT_OK(db_->RecordVersion(txn, fresh.oid(), base.oid()));
  return fresh;
}

template <typename T>
Result<std::vector<PRef<T>>> Session::VersionChain(Transaction* txn,
                                                   PRef<T> ref) {
  std::vector<PRef<T>> chain{ref};
  Oid current = ref.oid();
  for (int depth = 0; depth < 10000; ++depth) {
    auto parent = db_->VersionParent(txn, current);
    if (!parent.ok()) {
      if (parent.status().IsNotFound()) return chain;
      return parent.status();
    }
    chain.push_back(PRef<T>(parent.value()));
    current = parent.value();
  }
  return Status::Corruption("version chain cycle suspected");
}

template <typename T>
Status Session::ScheduleUserEvent(Transaction* txn, PRef<T> ref,
                                  const std::string& event_name,
                                  int64_t at) {
  ODE_ASSIGN_OR_RETURN(const ClassRecord* rec, RecordFor(typeid(T)));
  const EventDecl* decl = rec->descriptor->FindEvent(event_name);
  if (decl == nullptr || decl->kind != EventKind::kUser) {
    return Status::InvalidArgument("class " + rec->name +
                                   " declares no user event '" +
                                   event_name + "'");
  }
  return ScheduleUserEventImpl(txn, ref.oid(), event_name, at);
}

}  // namespace ode

#endif  // ODE_ODEPP_SESSION_H_
