#ifndef ODE_ODEPP_PREF_H_
#define ODE_ODEPP_PREF_H_

#include "objstore/oid.h"

namespace ode {

/// A typed persistent pointer — the O++ `persistent T*`. It is only a
/// typed Oid; all access goes through the Session, which plays the role
/// of the compiler-generated wrapper functions (posting member-function
/// events for invocations made through persistent pointers, §5.3).
template <typename T>
class PRef {
 public:
  PRef() = default;
  explicit PRef(Oid oid) : oid_(oid) {}

  Oid oid() const { return oid_; }
  bool IsNull() const { return oid_.IsNull(); }

  /// Upcast to a base-class reference (the object itself is unchanged;
  /// the Session resolves the dynamic type from the stored image).
  template <typename Base>
  PRef<Base> As() const {
    static_assert(std::is_base_of_v<Base, T>,
                  "PRef::As target must be a base class");
    return PRef<Base>(oid_);
  }

  friend bool operator==(PRef a, PRef b) { return a.oid_ == b.oid_; }
  friend bool operator!=(PRef a, PRef b) { return a.oid_ != b.oid_; }

 private:
  Oid oid_;
};

}  // namespace ode

#endif  // ODE_ODEPP_PREF_H_
